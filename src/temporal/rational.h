#ifndef DMTL_TEMPORAL_RATIONAL_H_
#define DMTL_TEMPORAL_RATIONAL_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

#include "src/common/status.h"

namespace dmtl {

// Exact rational number with int64 numerator / denominator, always stored
// normalized (gcd(|num|, den) == 1, den > 0). DatalogMTL is interpreted over
// the rational timeline, so time points and interval bounds are Rationals.
//
// Intermediate products use 128-bit arithmetic; a result whose normalized
// numerator or denominator overflows int64 aborts via DCHECK-style assert in
// debug and saturates in release. Contract workloads use integer Unix
// timestamps and small interval bounds, far from overflow.
class Rational {
 public:
  // Zero.
  constexpr Rational() : num_(0), den_(1) {}

  // Integer value.
  constexpr Rational(int64_t n) : num_(n), den_(1) {}  // NOLINT(runtime/explicit): intentional int promotion

  // num/den, normalized. den must be non-zero.
  Rational(int64_t num, int64_t den);

  int64_t numerator() const { return num_; }
  int64_t denominator() const { return den_; }

  bool is_integer() const { return den_ == 1; }
  bool is_zero() const { return num_ == 0; }
  bool is_negative() const { return num_ < 0; }

  // Greatest integer <= value, and least integer >= value.
  int64_t Floor() const;
  int64_t Ceil() const;

  double ToDouble() const;

  // "3", "-7/2".
  std::string ToString() const;

  // Parses "n", "n/d", or a decimal literal like "2.5" exactly.
  static Result<Rational> FromString(const std::string& text);

  // Exact conversion from a double with a small power-of-two denominator is
  // not generally possible in int64; this rounds to the nearest rational
  // with denominator `den`.
  static Rational FromDouble(double value, int64_t den = 1'000'000);

  // Addition and subtraction fast-path the integer timeline (den == 1 on
  // both sides, no int64 overflow — the overwhelmingly common case for Unix
  // timestamps); everything else goes through 128-bit AddSlow.
  friend Rational operator+(const Rational& a, const Rational& b) {
    Rational r;
    if (a.den_ == 1 && b.den_ == 1 &&
        !__builtin_add_overflow(a.num_, b.num_, &r.num_)) {
      return r;
    }
    return AddSlow(a, b);
  }
  friend Rational operator-(const Rational& a, const Rational& b) {
    Rational r;
    if (a.den_ == 1 && b.den_ == 1 &&
        !__builtin_sub_overflow(a.num_, b.num_, &r.num_)) {
      return r;
    }
    return AddSlow(a, -b);
  }
  friend Rational operator*(const Rational& a, const Rational& b);
  // b must be non-zero.
  friend Rational operator/(const Rational& a, const Rational& b);
  friend Rational operator-(const Rational& a) {
    Rational r;
    r.num_ = -a.num_;
    r.den_ = a.den_;
    return r;
  }

  Rational& operator+=(const Rational& b) { return *this = *this + b; }
  Rational& operator-=(const Rational& b) { return *this = *this - b; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  // Normalized storage (den > 0, gcd == 1) makes the equal-denominator
  // compare exact; cross-multiplication only runs for mixed denominators.
  friend bool operator<(const Rational& a, const Rational& b) {
    if (a.den_ == b.den_) return a.num_ < b.num_;
    return static_cast<__int128>(a.num_) * b.den_ <
           static_cast<__int128>(b.num_) * a.den_;
  }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return !(b < a);
  }
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return b <= a;
  }

  template <typename H>
  friend H AbslHashValue(H h, const Rational& r) {
    return H::combine(std::move(h), r.num_, r.den_);
  }

  size_t Hash() const;

 private:
  // Full 128-bit cross-multiply + gcd normalization for mixed-denominator
  // (or overflowing) sums.
  static Rational AddSlow(const Rational& a, const Rational& b);

  int64_t num_;
  int64_t den_;
};

inline std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.ToString();
}

inline Rational Min(const Rational& a, const Rational& b) {
  return a < b ? a : b;
}
inline Rational Max(const Rational& a, const Rational& b) {
  return a < b ? b : a;
}
inline Rational Abs(const Rational& a) { return a.is_negative() ? -a : a; }

}  // namespace dmtl

template <>
struct std::hash<dmtl::Rational> {
  size_t operator()(const dmtl::Rational& r) const { return r.Hash(); }
};

#endif  // DMTL_TEMPORAL_RATIONAL_H_
