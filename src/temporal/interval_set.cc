#include "src/temporal/interval_set.h"

#include <algorithm>
#include <cassert>

namespace dmtl {

namespace {

// Appends the (up to two) pieces of `a` not covered by `b`.
void SubtractInterval(const Interval& a, const Interval& b,
                      std::vector<Interval>* out) {
  if (!a.Intersect(b).has_value()) {
    out->push_back(a);
    return;
  }
  // Left piece: from a.lo up to (but excluding per b's openness) b.lo.
  if (!b.lo().infinite) {
    Bound hi = b.lo();
    hi.open = !hi.open;  // the complement flips inclusion at the cut point
    if (auto left = Interval::Make(a.lo(), hi); left.has_value()) {
      out->push_back(*left);
    }
  }
  // Right piece: from (excluding per b's openness) b.hi up to a.hi.
  if (!b.hi().infinite) {
    Bound lo = b.hi();
    lo.open = !lo.open;
    if (auto right = Interval::Make(lo, a.hi()); right.has_value()) {
      out->push_back(*right);
    }
  }
}

}  // namespace

IntervalSet IntervalSet::FromIntervals(const std::vector<Interval>& ivs) {
  IntervalSet out;
  for (const Interval& iv : ivs) out.Insert(iv);
  return out;
}

bool IntervalSet::Contains(const Rational& t) const {
  // Binary search: first interval not strictly before [t,t].
  Interval point = Interval::Point(t);
  auto it = std::partition_point(
      intervals_.begin(), intervals_.end(),
      [&](const Interval& x) { return x.StrictlyBefore(point); });
  for (; it != intervals_.end(); ++it) {
    if (it->Contains(t)) return true;
    if (point.StrictlyBefore(*it)) break;
  }
  return false;
}

bool IntervalSet::Contains(const Interval& iv) const {
  // Must fit inside a single component (components have true gaps).
  for (const Interval& x : intervals_) {
    if (x.Contains(iv)) return true;
  }
  return false;
}

bool IntervalSet::ContainsSet(const IntervalSet& other) const {
  for (const Interval& iv : other.intervals_) {
    if (!Contains(iv)) return false;
  }
  return true;
}

IntervalSet IntervalSet::Insert(const Interval& iv) {
  // Fast path: appending past the end (the dominant pattern when facts are
  // derived in temporal order).
  if (intervals_.empty() || intervals_.back().StrictlyBefore(iv)) {
    intervals_.push_back(iv);
    return IntervalSet(iv);
  }
  auto first = std::partition_point(
      intervals_.begin(), intervals_.end(),
      [&](const Interval& x) { return x.StrictlyBefore(iv); });
  // Collect the run of intervals that overlap or touch iv.
  auto last = first;
  Interval merged = iv;
  std::vector<Interval> uncovered = {iv};
  std::vector<Interval> next;
  while (last != intervals_.end() && !iv.StrictlyBefore(*last)) {
    if (merged.Unionable(*last)) merged = merged.UnionWith(*last);
    next.clear();
    for (const Interval& piece : uncovered) {
      SubtractInterval(piece, *last, &next);
    }
    uncovered.swap(next);
    ++last;
  }
  IntervalSet delta;
  delta.intervals_ = std::move(uncovered);
  if (last == first) {
    intervals_.insert(first, merged);
  } else {
    *first = merged;
    intervals_.erase(first + 1, last);
  }
  return delta;
}

void IntervalSet::UnionWith(const IntervalSet& other) {
  for (const Interval& iv : other.intervals_) Insert(iv);
}

IntervalSet IntervalSet::Intersect(const IntervalSet& other) const {
  // Asymmetric fast path: probe each component of the small set into the
  // large one by binary search (rule evaluation constantly intersects a
  // punctual row extent with a session-long per-tick chain extent).
  const size_t small_n = std::min(intervals_.size(), other.intervals_.size());
  const size_t large_n = std::max(intervals_.size(), other.intervals_.size());
  if (small_n != 0 && large_n > 16 && small_n * 8 < large_n) {
    const IntervalSet& small = intervals_.size() <= other.intervals_.size()
                                   ? *this
                                   : other;
    const IntervalSet& large = intervals_.size() <= other.intervals_.size()
                                   ? other
                                   : *this;
    IntervalSet out;
    for (const Interval& s : small.intervals_) {
      auto it = std::partition_point(
          large.intervals_.begin(), large.intervals_.end(),
          [&](const Interval& x) { return x.StrictlyBefore(s); });
      for (; it != large.intervals_.end(); ++it) {
        if (s.StrictlyBefore(*it)) break;
        if (auto x = s.Intersect(*it); x.has_value()) {
          out.Insert(*x);
        }
      }
    }
    return out;
  }
  IntervalSet out;
  // Two-pointer sweep over sorted components.
  size_t i = 0;
  size_t j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    if (auto x = a.Intersect(b); x.has_value()) {
      out.intervals_.push_back(*x);
    }
    // Advance whichever ends first.
    int cmp_hi = [&] {
      const Bound& ha = a.hi();
      const Bound& hb = b.hi();
      if (ha.infinite && hb.infinite) return 0;
      if (ha.infinite) return 1;
      if (hb.infinite) return -1;
      if (ha.value < hb.value) return -1;
      if (hb.value < ha.value) return 1;
      if (ha.open == hb.open) return 0;
      return ha.open ? -1 : 1;
    }();
    if (cmp_hi <= 0) {
      ++i;
    }
    if (cmp_hi >= 0) {
      ++j;
    }
  }
  return out;
}

IntervalSet IntervalSet::Intersect(const Interval& iv) const {
  return Intersect(IntervalSet(iv));
}

IntervalSet IntervalSet::Subtract(const IntervalSet& other) const {
  return Intersect(other.Complement());
}

IntervalSet IntervalSet::Complement() const {
  IntervalSet out;
  if (intervals_.empty()) {
    out.intervals_.push_back(Interval::All());
    return out;
  }
  // Gap before the first component.
  const Interval& first = intervals_.front();
  if (!first.lo().infinite) {
    Bound hi = first.lo();
    hi.open = !hi.open;
    if (auto gap = Interval::Make(Bound::Infinite(), hi); gap.has_value()) {
      out.intervals_.push_back(*gap);
    }
  }
  // Gaps between components.
  for (size_t i = 0; i + 1 < intervals_.size(); ++i) {
    Bound lo = intervals_[i].hi();
    lo.open = !lo.open;
    Bound hi = intervals_[i + 1].lo();
    hi.open = !hi.open;
    if (auto gap = Interval::Make(lo, hi); gap.has_value()) {
      out.intervals_.push_back(*gap);
    }
  }
  // Gap after the last component.
  const Interval& last = intervals_.back();
  if (!last.hi().infinite) {
    Bound lo = last.hi();
    lo.open = !lo.open;
    if (auto gap = Interval::Make(lo, Bound::Infinite()); gap.has_value()) {
      out.intervals_.push_back(*gap);
    }
  }
  return out;
}

IntervalSet IntervalSet::Shift(const Rational& delta) const {
  IntervalSet out;
  out.intervals_.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    out.intervals_.push_back(iv.Shift(delta));
  }
  return out;
}

IntervalSet IntervalSet::DiamondMinus(const Interval& rho) const {
  IntervalSet out;
  for (const Interval& iv : intervals_) out.Insert(iv.DiamondMinus(rho));
  return out;
}

IntervalSet IntervalSet::BoxMinus(const Interval& rho) const {
  IntervalSet out;
  for (const Interval& iv : intervals_) {
    if (auto x = iv.BoxMinus(rho); x.has_value()) out.Insert(*x);
  }
  return out;
}

IntervalSet IntervalSet::DiamondPlus(const Interval& rho) const {
  IntervalSet out;
  for (const Interval& iv : intervals_) out.Insert(iv.DiamondPlus(rho));
  return out;
}

IntervalSet IntervalSet::BoxPlus(const Interval& rho) const {
  IntervalSet out;
  for (const Interval& iv : intervals_) {
    if (auto x = iv.BoxPlus(rho); x.has_value()) out.Insert(*x);
  }
  return out;
}

IntervalSet IntervalSet::Since(const IntervalSet& m2,
                               const Interval& rho) const {
  IntervalSet out;
  // s == t witnesses: M1 Since M2 degenerates to M2 where 0 in rho.
  if (rho.Contains(Rational(0))) out.UnionWith(m2);
  // Strictly-past witnesses use rho restricted to (0, +inf).
  auto rho_pos = rho.Intersect(
      *Interval::Make(Bound::Open(Rational(0)), Bound::Infinite()));
  if (!rho_pos.has_value()) return out;
  for (const Interval& i1 : intervals_) {
    // The witness s must satisfy s >= i1.lo (the open gap (s,t) tolerates
    // s on the boundary) and the result t <= i1.hi likewise.
    Bound win_lo = i1.lo().infinite ? Bound::Infinite()
                                    : Bound::Closed(i1.lo().value);
    auto window = Interval::Make(win_lo, Bound::Infinite());
    assert(window.has_value());
    for (const Interval& i2 : m2.intervals_) {
      auto j = i2.Intersect(*window);
      if (!j.has_value()) continue;
      Interval reach = j->DiamondMinus(*rho_pos);
      if (!i1.hi().infinite) {
        auto clamp = Interval::Make(Bound::Infinite(),
                                    Bound::Closed(i1.hi().value));
        auto r = reach.Intersect(*clamp);
        if (!r.has_value()) continue;
        reach = *r;
      }
      out.Insert(reach);
    }
  }
  return out;
}

IntervalSet IntervalSet::Until(const IntervalSet& m2,
                               const Interval& rho) const {
  IntervalSet out;
  if (rho.Contains(Rational(0))) out.UnionWith(m2);
  auto rho_pos = rho.Intersect(
      *Interval::Make(Bound::Open(Rational(0)), Bound::Infinite()));
  if (!rho_pos.has_value()) return out;
  for (const Interval& i1 : intervals_) {
    Bound win_hi = i1.hi().infinite ? Bound::Infinite()
                                    : Bound::Closed(i1.hi().value);
    auto window = Interval::Make(Bound::Infinite(), win_hi);
    assert(window.has_value());
    for (const Interval& i2 : m2.intervals_) {
      auto j = i2.Intersect(*window);
      if (!j.has_value()) continue;
      Interval reach = j->DiamondPlus(*rho_pos);
      if (!i1.lo().infinite) {
        auto clamp = Interval::Make(Bound::Closed(i1.lo().value),
                                    Bound::Infinite());
        auto r = reach.Intersect(*clamp);
        if (!r.has_value()) continue;
        reach = *r;
      }
      out.Insert(reach);
    }
  }
  return out;
}

Interval IntervalSet::Hull() const {
  // Normalized storage keeps components sorted, so the hull is spanned by
  // the first lower and last upper bound.
  return intervals_.front().Hull(intervals_.back());
}

bool IntervalSet::IsPunctualOnly(std::vector<Rational>* points) const {
  for (const Interval& iv : intervals_) {
    if (!iv.IsPunctual()) return false;
  }
  if (points != nullptr) {
    points->clear();
    points->reserve(intervals_.size());
    for (const Interval& iv : intervals_) points->push_back(iv.lo().value);
  }
  return true;
}

std::string IntervalSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) out += ' ';
    out += intervals_[i].ToString();
  }
  out += '}';
  return out;
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& set) {
  return os << set.ToString();
}

}  // namespace dmtl
