#include "src/temporal/interval_set.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <vector>

#include "src/temporal/dense.h"

namespace dmtl {

namespace {

std::atomic<uint64_t> g_bulk_merges{0};

// --- dense integer-timeline kernels --------------------------------------
// When the engine proved the program+database integral (dense::Enabled()),
// the bulk kernels below re-encode both component lists as packed int64
// keys (see dense.h) and run branch-light integer sweeps, decoding the
// result once at the end. Encoding re-verifies integrality per element and
// the kernel falls back to the Rational path on any miss, so the dense
// route is byte-identical by construction - it computes the same bounds,
// just in key arithmetic.

struct DIv {
  dense::DKey lo;
  dense::DKey hi;
};

bool EncodeAll(const SmallIntervalVec& v, std::vector<DIv>* out) {
  out->clear();
  out->reserve(v.size());
  for (const Interval& iv : v) {
    DIv d;
    if (!dense::EncodeInterval(iv, &d.lo, &d.hi)) return false;
    out->push_back(d);
  }
  return true;
}

void DecodeAll(const std::vector<DIv>& in, SmallIntervalVec* out) {
  out->reserve(out->size() + in.size());
  for (const DIv& d : in) {
    out->push_back(dense::DecodeInterval(d.lo, d.hi));
  }
}

// Per-kernel scratch; reused across calls so the steady state allocates
// nothing. The kernels never nest (none calls another while its scratch is
// live), so three buffers suffice for any call shape.
thread_local std::vector<DIv> t_da;
thread_local std::vector<DIv> t_db;
thread_local std::vector<DIv> t_dout;

// a.StartsBefore(b) on keys: lower bounds ascend, ties by upper bound.
inline bool KeyStartsBefore(const DIv& a, const DIv& b) {
  return a.lo < b.lo || (a.lo == b.lo && a.hi < b.hi);
}

// Appends to a key sweep output, coalescing with the back component when
// there is no gap (back.hi and d.lo adjacent or overlapping). Requires
// inputs sorted by lower bound.
inline void AppendCoalesceKeys(std::vector<DIv>* out, DIv d) {
  if (!out->empty() && out->back().hi + 1 >= d.lo) {
    if (d.hi > out->back().hi) out->back().hi = d.hi;
  } else {
    out->push_back(d);
  }
}

// The complement flips inclusion at a cut point: the piece left of a closed
// bound ends open at the same value, and vice versa.
Bound FlipOpenness(Bound b) {
  b.open = !b.open;
  return b;
}

// Appends `iv` to a normalized sequence whose components arrive sorted by
// lower bound but may overlap or touch their predecessor (the dilation and
// merge sweeps below produce exactly this shape). Coalesces into the back
// component when possible; the result stays normalized because a
// non-unionable successor with a later lower bound implies a true gap.
void AppendCoalesce(SmallIntervalVec* out, const Interval& iv) {
  if (!out->empty() && out->back().Unionable(iv)) {
    out->back() = out->back().UnionWith(iv);
  } else {
    out->push_back(iv);
  }
}

}  // namespace

uint64_t IntervalSet::BulkMergeCount() {
  return g_bulk_merges.load(std::memory_order_relaxed);
}

IntervalSet IntervalSet::FromIntervals(const std::vector<Interval>& ivs) {
  IntervalSet out;
  if (ivs.empty()) return out;
  g_bulk_merges.fetch_add(1, std::memory_order_relaxed);
  // Small batches are the overwhelmingly common shape (WalkGrid emits one
  // batch per grid cell, usually 1-2 clips). Normalized insertion straight
  // into the output skips both the heap copy + sort of the general path
  // and the dense key codec round-trip; the result is the same canonical
  // component list either way.
  if (ivs.size() == 1) {
    out.intervals_.push_back(ivs[0]);
    return out;
  }
  if (ivs.size() <= 8) {
    for (const Interval& iv : ivs) out.Add(iv);
    return out;
  }
  if (dense::Enabled()) {
    t_da.clear();
    t_da.reserve(ivs.size());
    bool ok = true;
    for (const Interval& iv : ivs) {
      DIv d;
      if (!dense::EncodeInterval(iv, &d.lo, &d.hi)) {
        ok = false;
        break;
      }
      t_da.push_back(d);
    }
    if (ok) {
      std::sort(t_da.begin(), t_da.end(), KeyStartsBefore);
      t_dout.clear();
      for (const DIv& d : t_da) AppendCoalesceKeys(&t_dout, d);
      DecodeAll(t_dout, &out.intervals_);
      return out;
    }
  }
  std::vector<Interval> sorted = ivs;
  std::sort(sorted.begin(), sorted.end(),
            [](const Interval& a, const Interval& b) {
              return a.StartsBefore(b);
            });
  for (const Interval& iv : sorted) AppendCoalesce(&out.intervals_, iv);
  return out;
}

bool IntervalSet::Contains(const Rational& t) const {
  // Binary search: first interval not strictly before [t,t].
  Interval point = Interval::Point(t);
  auto it = std::partition_point(
      intervals_.begin(), intervals_.end(),
      [&](const Interval& x) { return x.StrictlyBefore(point); });
  for (; it != intervals_.end(); ++it) {
    if (it->Contains(t)) return true;
    if (point.StrictlyBefore(*it)) break;
  }
  return false;
}

bool IntervalSet::Contains(const Interval& iv) const {
  // Must fit inside a single component (components have true gaps).
  for (const Interval& x : intervals_) {
    if (x.Contains(iv)) return true;
  }
  return false;
}

bool IntervalSet::ContainsSet(const IntervalSet& other) const {
  for (const Interval& iv : other.intervals_) {
    if (!Contains(iv)) return false;
  }
  return true;
}

IntervalSet IntervalSet::Insert(const Interval& iv) {
  // Fast path: appending past the end (the dominant pattern when facts are
  // derived in temporal order). The delta lives in the inline buffer.
  if (intervals_.empty() || intervals_.back().StrictlyBefore(iv)) {
    intervals_.push_back(iv);
    return IntervalSet(iv);
  }
  const size_t first = std::partition_point(
                           intervals_.begin(), intervals_.end(),
                           [&](const Interval& x) {
                             return x.StrictlyBefore(iv);
                           }) -
                       intervals_.begin();
  // Walk the run of components that overlap or touch iv, accumulating the
  // union and collecting the uncovered slices of iv between run members in
  // one forward pass.
  size_t last = first;
  Interval merged = iv;
  IntervalSet delta;
  Bound cursor = iv.lo();
  bool covered_to_end = false;
  while (last < intervals_.size() && !iv.StrictlyBefore(intervals_[last])) {
    const Interval& x = intervals_[last];
    if (merged.Unionable(x)) merged = merged.UnionWith(x);
    if (!covered_to_end) {
      if (x.lo().infinite) {
        // x extends to -inf, so nothing of iv survives left of it.
      } else if (auto piece = Interval::Make(cursor, FlipOpenness(x.lo()));
                 piece.has_value()) {
        delta.intervals_.push_back(*piece);
      }
      if (x.hi().infinite) {
        covered_to_end = true;
      } else {
        cursor = FlipOpenness(x.hi());
      }
    }
    ++last;
  }
  if (!covered_to_end) {
    if (auto tail = Interval::Make(cursor, iv.hi()); tail.has_value()) {
      delta.intervals_.push_back(*tail);
    }
  }
  if (last == first) {
    intervals_.insert_at(first, merged);
  } else {
    intervals_[first] = merged;
    intervals_.erase_range(first + 1, last);
  }
  return delta;
}

void IntervalSet::Add(const Interval& iv) {
  if (intervals_.empty() || intervals_.back().StrictlyBefore(iv)) {
    intervals_.push_back(iv);
    return;
  }
  const size_t first = std::partition_point(
                           intervals_.begin(), intervals_.end(),
                           [&](const Interval& x) {
                             return x.StrictlyBefore(iv);
                           }) -
                       intervals_.begin();
  size_t last = first;
  Interval merged = iv;
  while (last < intervals_.size() && !iv.StrictlyBefore(intervals_[last])) {
    if (merged.Unionable(intervals_[last])) {
      merged = merged.UnionWith(intervals_[last]);
    }
    ++last;
  }
  if (last == first) {
    intervals_.insert_at(first, merged);
  } else {
    intervals_[first] = merged;
    intervals_.erase_range(first + 1, last);
  }
}

void IntervalSet::UnionWith(const IntervalSet& other) {
  if (other.intervals_.empty()) return;
  if (intervals_.empty()) {
    intervals_ = other.intervals_;
    return;
  }
  if (other.intervals_.size() == 1) {
    Add(other.intervals_[0]);
    return;
  }
  g_bulk_merges.fetch_add(1, std::memory_order_relaxed);
  if (intervals_.back().StrictlyBefore(other.intervals_.front())) {
    // Disjoint suffix: plain append, no sweep needed. Reserve ahead so the
    // loop grows the storage once instead of doubling mid-append.
    intervals_.reserve(intervals_.size() + other.intervals_.size());
    for (const Interval& iv : other.intervals_) intervals_.push_back(iv);
    return;
  }
  // No dense fast path here on purpose: the merge sweep below already
  // compares same-denominator Rationals as single int64s, so a key-space
  // merge saves nothing while paying the encode/decode round-trip
  // (measured ~10% slower in BM_DenseIntervalKernels/union).
  //
  // Single coalescing sweep over both sorted component lists. When this
  // set is pinned (stored extent), build the output pinned too: the final
  // move then steals a heap buffer instead of deep-copying an arena one.
  SmallIntervalVec out;
  if (intervals_.pinned()) out.MarkPersistent();
  out.reserve(intervals_.size() + other.intervals_.size());
  const Interval* a = intervals_.begin();
  const Interval* a_end = intervals_.end();
  const Interval* b = other.intervals_.begin();
  const Interval* b_end = other.intervals_.end();
  while (a != a_end && b != b_end) {
    if (a->StartsBefore(*b)) {
      AppendCoalesce(&out, *a++);
    } else {
      AppendCoalesce(&out, *b++);
    }
  }
  while (a != a_end) AppendCoalesce(&out, *a++);
  while (b != b_end) AppendCoalesce(&out, *b++);
  intervals_ = std::move(out);
}

IntervalSet IntervalSet::UnionWithDelta(const IntervalSet& other) {
  IntervalSet fresh = other.Subtract(*this);
  if (!fresh.IsEmpty()) UnionWith(other);
  return fresh;
}

IntervalSet IntervalSet::Intersect(const IntervalSet& other) const {
  if (intervals_.empty() || other.intervals_.empty()) return IntervalSet();
  // Single-component operands take the binary-search clip directly: the VM
  // constantly intersects a chain extent with a one-interval window, and
  // the O(log n + clips) form beats both the gallop and the sweep there.
  if (other.intervals_.size() == 1) return Intersect(other.intervals_[0]);
  if (intervals_.size() == 1) return other.Intersect(intervals_[0]);
  // Asymmetric fast path: probe each component of the small set into the
  // large one by binary search (rule evaluation constantly intersects a
  // punctual row extent with a session-long per-tick chain extent). Clips
  // append directly: each probe's output is confined to its component, and
  // components are separated by true gaps, so the pieces arrive sorted,
  // disjoint, and non-coalescable.
  const size_t small_n = std::min(intervals_.size(), other.intervals_.size());
  const size_t large_n = std::max(intervals_.size(), other.intervals_.size());
  if (small_n != 0 && large_n > 16 && small_n * 8 < large_n) {
    const IntervalSet& small = intervals_.size() <= other.intervals_.size()
                                   ? *this
                                   : other;
    const IntervalSet& large = intervals_.size() <= other.intervals_.size()
                                   ? other
                                   : *this;
    IntervalSet out;
    // The small components ascend, so each lands at or after the previous
    // probe's position: gallop from there instead of bisecting the whole
    // list again (probes cluster near the frontier of the large set, where
    // a restart-from-begin bisection pays the full log cost every time).
    const Interval* base = large.intervals_.begin();
    const Interval* const end = large.intervals_.end();
    for (const Interval& s : small.intervals_) {
      auto before = [&](const Interval& x) { return x.StrictlyBefore(s); };
      const Interval* lo = base;
      const Interval* probe = base;
      size_t step = 1;
      while (probe != end && before(*probe)) {
        lo = probe + 1;
        probe += std::min(step, static_cast<size_t>(end - probe));
        step *= 2;
      }
      const Interval* it = std::partition_point(lo, probe, before);
      base = it;
      for (; it != end; ++it) {
        if (s.StrictlyBefore(*it)) break;
        if (auto x = s.Intersect(*it); x.has_value()) {
          out.intervals_.push_back(*x);
        }
      }
    }
    return out;
  }
  if (dense::Enabled() && EncodeAll(intervals_, &t_da) &&
      EncodeAll(other.intervals_, &t_db)) {
    IntervalSet out;
    if (t_da.empty() || t_db.empty()) return out;
    t_dout.clear();
    // Same shape as the Rational sweep below: skip disjoint prefixes by
    // binary search, then advance whichever side ends first.
    const dense::DKey first_b_lo = t_db.front().lo;
    const dense::DKey first_a_lo = t_da.front().lo;
    const DIv* a = std::partition_point(
        t_da.data(), t_da.data() + t_da.size(),
        [&](const DIv& x) { return x.hi + 1 < first_b_lo; });
    const DIv* const ae = t_da.data() + t_da.size();
    const DIv* b = std::partition_point(
        t_db.data(), t_db.data() + t_db.size(),
        [&](const DIv& x) { return x.hi + 1 < first_a_lo; });
    const DIv* const be = t_db.data() + t_db.size();
    while (a != ae && b != be) {
      const dense::DKey lo = a->lo > b->lo ? a->lo : b->lo;
      const dense::DKey hi = a->hi < b->hi ? a->hi : b->hi;
      if (lo <= hi) t_dout.push_back(DIv{lo, hi});
      if (a->hi <= b->hi) {
        if (a->hi >= b->hi) ++b;
        ++a;
      } else {
        ++b;
      }
    }
    DecodeAll(t_dout, &out.intervals_);
    return out;
  }
  IntervalSet out;
  // Two-pointer sweep over sorted components. Binary-jump each side past
  // the prefix that ends before the other side begins: two frontier-heavy
  // sets (a round's delta extent against a session-long store) overlap only
  // in a narrow window, and the sweep should not walk the long prefix
  // component by component.
  size_t i = 0;
  size_t j = 0;
  if (!intervals_.empty() && !other.intervals_.empty()) {
    const Interval& first_b = other.intervals_.front();
    i = std::partition_point(
            intervals_.begin(), intervals_.end(),
            [&](const Interval& x) { return x.StrictlyBefore(first_b); }) -
        intervals_.begin();
    const Interval& first_a = intervals_.front();
    j = std::partition_point(
            other.intervals_.begin(), other.intervals_.end(),
            [&](const Interval& x) { return x.StrictlyBefore(first_a); }) -
        other.intervals_.begin();
  }
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    if (auto x = a.Intersect(b); x.has_value()) {
      out.intervals_.push_back(*x);
    }
    // Advance whichever ends first.
    int cmp_hi = [&] {
      const Bound& ha = a.hi();
      const Bound& hb = b.hi();
      if (ha.infinite && hb.infinite) return 0;
      if (ha.infinite) return 1;
      if (hb.infinite) return -1;
      if (ha.value < hb.value) return -1;
      if (hb.value < ha.value) return 1;
      if (ha.open == hb.open) return 0;
      return ha.open ? -1 : 1;
    }();
    if (cmp_hi <= 0) {
      ++i;
    }
    if (cmp_hi >= 0) {
      ++j;
    }
  }
  return out;
}

IntervalSet IntervalSet::Intersect(const Interval& iv) const {
  // Binary search to both ends of the run overlapping iv, clip the run's
  // edges, and copy the interior untouched: a normalized set separates
  // components with true gaps, so any component strictly inside the run is
  // wholly contained in iv and needs no bound comparison at all. This is
  // the window clamp on the rule-evaluation emit path; the common 0-2
  // piece result stays inline.
  IntervalSet out;
  const Interval* first = std::partition_point(
      intervals_.begin(), intervals_.end(),
      [&](const Interval& x) { return x.StrictlyBefore(iv); });
  const Interval* last = std::partition_point(
      first, intervals_.end(),
      [&](const Interval& x) { return !iv.StrictlyBefore(x); });
  if (first == last) return out;
  out.intervals_.reserve(static_cast<size_t>(last - first));
  if (auto x = first->Intersect(iv); x.has_value()) {
    out.intervals_.push_back(*x);
  }
  if (last - first == 1) return out;
  for (const Interval* p = first + 1; p + 1 != last; ++p) {
    out.intervals_.push_back(*p);
  }
  if (auto x = (last - 1)->Intersect(iv); x.has_value()) {
    out.intervals_.push_back(*x);
  }
  return out;
}

IntervalSet IntervalSet::Subtract(const IntervalSet& other) const {
  if (intervals_.empty() || other.intervals_.empty()) return *this;
  // The dense path pays O(|other|) to encode the subtrahend up front; the
  // Rational sweep below only binary-searches it. For the frontier shape
  // (a round's delta minus a session-long store, via UnionWithDelta) the
  // subtrahend is thousands of components and the minuend a handful, so
  // encoding it every round would go quadratic across the run. Take the
  // dense path only when the sides are of comparable size.
  if (dense::Enabled() &&
      other.intervals_.size() <= 16 + 4 * intervals_.size() &&
      EncodeAll(intervals_, &t_da) && EncodeAll(other.intervals_, &t_db)) {
    IntervalSet out;
    t_dout.clear();
    // Key-space mirror of the Rational sweep below. The complement cuts
    // are single increments: the upper bound left of a lower-bound key k
    // is k - 1, and the lower bound right of an upper-bound key is k + 1
    // (adjacent keys flip both the value parity and the openness bit at
    // once - that is the point of the encoding).
    const DIv* b0 = t_db.data();
    const DIv* const be = b0 + t_db.size();
    for (const DIv& a : t_da) {
      b0 = std::partition_point(
          b0, be, [&](const DIv& x) { return x.hi + 1 < a.lo; });
      dense::DKey cursor = a.lo;
      bool covered_to_end = false;
      for (const DIv* b = b0; b != be && !(a.hi + 1 < b->lo); ++b) {
        if (b->lo > dense::kNegInf) {
          const dense::DKey piece_hi = b->lo - 1;
          if (cursor <= piece_hi) t_dout.push_back(DIv{cursor, piece_hi});
        }
        if (b->hi >= dense::kPosInf) {
          covered_to_end = true;
          break;
        }
        cursor = b->hi + 1;
      }
      if (!covered_to_end && cursor <= a.hi) {
        t_dout.push_back(DIv{cursor, a.hi});
      }
    }
    DecodeAll(t_dout, &out.intervals_);
    return out;
  }
  // Two-pointer sweep: for each component `a`, binary-jump to the first
  // subtrahend component not strictly before it, then chip the overlap run
  // off a left-to-right. Surviving pieces are separated by removed chunks
  // (within a component) or original gaps (across components), so direct
  // appends stay normalized.
  IntervalSet out;
  out.intervals_.reserve(intervals_.size());
  size_t j = 0;
  for (const Interval& a : intervals_) {
    j = std::partition_point(
            other.intervals_.begin() + j, other.intervals_.end(),
            [&](const Interval& x) { return x.StrictlyBefore(a); }) -
        other.intervals_.begin();
    Bound cursor = a.lo();
    bool covered_to_end = false;
    // Do not advance j inside the run: a wide subtrahend component can
    // overlap several later components of *this.
    for (size_t k = j; k < other.intervals_.size() &&
                       !a.StrictlyBefore(other.intervals_[k]);
         ++k) {
      const Interval& b = other.intervals_[k];
      if (!b.lo().infinite) {
        if (auto piece = Interval::Make(cursor, FlipOpenness(b.lo()));
            piece.has_value()) {
          out.intervals_.push_back(*piece);
        }
      }
      if (b.hi().infinite) {
        covered_to_end = true;
        break;
      }
      cursor = FlipOpenness(b.hi());
    }
    if (!covered_to_end) {
      if (auto tail = Interval::Make(cursor, a.hi()); tail.has_value()) {
        out.intervals_.push_back(*tail);
      }
    }
  }
  return out;
}

IntervalSet IntervalSet::Complement() const {
  IntervalSet out;
  if (intervals_.empty()) {
    out.intervals_.push_back(Interval::All());
    return out;
  }
  // Gap before the first component.
  const Interval& first = intervals_.front();
  if (!first.lo().infinite) {
    if (auto gap = Interval::Make(Bound::Infinite(), FlipOpenness(first.lo()));
        gap.has_value()) {
      out.intervals_.push_back(*gap);
    }
  }
  // Gaps between components.
  for (size_t i = 0; i + 1 < intervals_.size(); ++i) {
    if (auto gap = Interval::Make(FlipOpenness(intervals_[i].hi()),
                                  FlipOpenness(intervals_[i + 1].lo()));
        gap.has_value()) {
      out.intervals_.push_back(*gap);
    }
  }
  // Gap after the last component.
  const Interval& last = intervals_.back();
  if (!last.hi().infinite) {
    if (auto gap = Interval::Make(FlipOpenness(last.hi()), Bound::Infinite());
        gap.has_value()) {
      out.intervals_.push_back(*gap);
    }
  }
  return out;
}

IntervalSet IntervalSet::Shift(const Rational& delta) const {
  IntervalSet out;
  out.intervals_.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    out.intervals_.push_back(iv.Shift(delta));
  }
  return out;
}

IntervalSet IntervalSet::DiamondMinus(const Interval& rho) const {
  IntervalSet out;
  // Dilation stays on the Rational path even under dense::Enabled(): the
  // per-component work is two same-denominator additions (already single
  // int64 adds), so the key codec round-trip only slows it down (measured
  // ~20% in BM_DenseIntervalKernels/diamondminus). The erosions (BoxMinus/
  // BoxPlus) do keep a dense path - their Rational form validates every
  // shrunken component, which the key arithmetic skips.
  //
  // Dilation preserves component order but may bridge gaps, so append with
  // back-coalescing instead of a full Insert per component.
  out.intervals_.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    AppendCoalesce(&out.intervals_, iv.DiamondMinus(rho));
  }
  return out;
}

IntervalSet IntervalSet::BoxMinus(const Interval& rho) const {
  IntervalSet out;
  dense::DKey rlo;
  dense::DKey rhi;
  // rlo must be finite: the Rational path treats an infinite rho.lo as its
  // stored value 0, which key arithmetic cannot mirror.
  if (dense::Enabled() && dense::EncodeInterval(rho, &rlo, &rhi) &&
      rlo > dense::kNegInf && EncodeAll(intervals_, &t_da)) {
    t_dout.clear();
    for (const DIv& d : t_da) {
      dense::DKey lo;
      if (rhi >= dense::kPosInf) {
        // Window reaches back to -inf: only an infinite past satisfies it.
        if (d.lo > dense::kNegInf) continue;
        lo = dense::kNegInf;
      } else if (d.lo <= dense::kNegInf) {
        lo = dense::kNegInf;
      } else {
        lo = dense::BoxLoPlusHi(d.lo, rhi);
      }
      const dense::DKey hi = d.hi >= dense::kPosInf
                                 ? dense::kPosInf
                                 : dense::BoxHiPlusLo(d.hi, rlo);
      if (lo <= hi) t_dout.push_back(DIv{lo, hi});
    }
    DecodeAll(t_dout, &out.intervals_);
    return out;
  }
  // Erosion shrinks every component in place, so existing gaps only widen:
  // survivors append directly.
  out.intervals_.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    if (auto x = iv.BoxMinus(rho); x.has_value()) {
      out.intervals_.push_back(*x);
    }
  }
  return out;
}

IntervalSet IntervalSet::DiamondPlus(const Interval& rho) const {
  IntervalSet out;
  // Rational path only, as in DiamondMinus: dilation is too cheap per
  // component for the key codec round-trip to pay off.
  out.intervals_.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    AppendCoalesce(&out.intervals_, iv.DiamondPlus(rho));
  }
  return out;
}

IntervalSet IntervalSet::BoxPlus(const Interval& rho) const {
  IntervalSet out;
  dense::DKey rlo;
  dense::DKey rhi;
  if (dense::Enabled() && dense::EncodeInterval(rho, &rlo, &rhi) &&
      rlo > dense::kNegInf && EncodeAll(intervals_, &t_da)) {
    t_dout.clear();
    for (const DIv& d : t_da) {
      const dense::DKey lo = d.lo <= dense::kNegInf
                                 ? dense::kNegInf
                                 : dense::BoxLoMinusLo(d.lo, rlo);
      dense::DKey hi;
      if (rhi >= dense::kPosInf) {
        if (d.hi < dense::kPosInf) continue;
        hi = dense::kPosInf;
      } else if (d.hi >= dense::kPosInf) {
        hi = dense::kPosInf;
      } else {
        hi = dense::BoxHiMinusHi(d.hi, rhi);
      }
      if (lo <= hi) t_dout.push_back(DIv{lo, hi});
    }
    DecodeAll(t_dout, &out.intervals_);
    return out;
  }
  out.intervals_.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    if (auto x = iv.BoxPlus(rho); x.has_value()) {
      out.intervals_.push_back(*x);
    }
  }
  return out;
}

IntervalSet IntervalSet::Since(const IntervalSet& m2,
                               const Interval& rho) const {
  IntervalSet out;
  // s == t witnesses: M1 Since M2 degenerates to M2 where 0 in rho.
  if (rho.Contains(Rational(0))) out.UnionWith(m2);
  // Strictly-past witnesses use rho restricted to (0, +inf).
  auto rho_pos = rho.Intersect(
      *Interval::Make(Bound::Open(Rational(0)), Bound::Infinite()));
  if (!rho_pos.has_value()) return out;
  for (const Interval& i1 : intervals_) {
    // The witness s must satisfy s >= i1.lo (the open gap (s,t) tolerates
    // s on the boundary) and the result t <= i1.hi likewise.
    Bound win_lo = i1.lo().infinite ? Bound::Infinite()
                                    : Bound::Closed(i1.lo().value);
    auto window = Interval::Make(win_lo, Bound::Infinite());
    assert(window.has_value());
    for (const Interval& i2 : m2.intervals_) {
      auto j = i2.Intersect(*window);
      if (!j.has_value()) continue;
      Interval reach = j->DiamondMinus(*rho_pos);
      if (!i1.hi().infinite) {
        auto clamp = Interval::Make(Bound::Infinite(),
                                    Bound::Closed(i1.hi().value));
        auto r = reach.Intersect(*clamp);
        if (!r.has_value()) continue;
        reach = *r;
      }
      out.Add(reach);
    }
  }
  return out;
}

IntervalSet IntervalSet::Until(const IntervalSet& m2,
                               const Interval& rho) const {
  IntervalSet out;
  if (rho.Contains(Rational(0))) out.UnionWith(m2);
  auto rho_pos = rho.Intersect(
      *Interval::Make(Bound::Open(Rational(0)), Bound::Infinite()));
  if (!rho_pos.has_value()) return out;
  for (const Interval& i1 : intervals_) {
    Bound win_hi = i1.hi().infinite ? Bound::Infinite()
                                    : Bound::Closed(i1.hi().value);
    auto window = Interval::Make(Bound::Infinite(), win_hi);
    assert(window.has_value());
    for (const Interval& i2 : m2.intervals_) {
      auto j = i2.Intersect(*window);
      if (!j.has_value()) continue;
      Interval reach = j->DiamondPlus(*rho_pos);
      if (!i1.lo().infinite) {
        auto clamp = Interval::Make(Bound::Closed(i1.lo().value),
                                    Bound::Infinite());
        auto r = reach.Intersect(*clamp);
        if (!r.has_value()) continue;
        reach = *r;
      }
      out.Add(reach);
    }
  }
  return out;
}

bool IntervalSet::IsPunctualOnly(std::vector<Rational>* points) const {
  for (const Interval& iv : intervals_) {
    if (!iv.IsPunctual()) return false;
  }
  if (points != nullptr) {
    points->clear();
    points->reserve(intervals_.size());
    for (const Interval& iv : intervals_) points->push_back(iv.lo().value);
  }
  return true;
}

std::string IntervalSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) out += ' ';
    out += intervals_[i].ToString();
  }
  out += '}';
  return out;
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& set) {
  return os << set.ToString();
}

}  // namespace dmtl
