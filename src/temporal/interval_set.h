#ifndef DMTL_TEMPORAL_INTERVAL_SET_H_
#define DMTL_TEMPORAL_INTERVAL_SET_H_

#include <string>
#include <vector>

#include "src/temporal/interval.h"

namespace dmtl {

// A set of rational time points represented as a normalized sequence of
// intervals: sorted, pairwise disjoint, and maximally coalesced (no two
// stored intervals could be merged into one). This is the temporal extent of
// a ground atom in the materialization, and the working currency of rule
// evaluation.
//
// Coalescing respects the dense order on Q: [5,5] and [6,6] remain two
// components (the open gap (5,6) is not covered), while [1,3) and [3,5]
// coalesce to [1,5].
class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(const Interval& iv) { intervals_.push_back(iv); }

  // Builds a normalized set from arbitrary (unsorted, overlapping) input.
  static IntervalSet FromIntervals(const std::vector<Interval>& ivs);

  bool IsEmpty() const { return intervals_.empty(); }
  size_t size() const { return intervals_.size(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  bool Contains(const Rational& t) const;
  bool Contains(const Interval& iv) const;
  bool ContainsSet(const IntervalSet& other) const;

  // Adds `iv` and returns the portion of `iv` that was not already covered
  // (the semi-naive delta of this insertion; empty when `iv` was already
  // fully contained).
  IntervalSet Insert(const Interval& iv);

  // Set algebra (all results normalized).
  void UnionWith(const IntervalSet& other);
  IntervalSet Intersect(const IntervalSet& other) const;
  IntervalSet Intersect(const Interval& iv) const;
  IntervalSet Subtract(const IntervalSet& other) const;
  // All time points NOT in this set.
  IntervalSet Complement() const;

  IntervalSet Shift(const Rational& delta) const;

  // --- MTL operator transforms on the full extent of an atom --------------
  // These are exact under normalization: a box/since window is an interval
  // and therefore must fit inside a single maximal component.
  IntervalSet DiamondMinus(const Interval& rho) const;
  IntervalSet BoxMinus(const Interval& rho) const;
  IntervalSet DiamondPlus(const Interval& rho) const;
  IntervalSet BoxPlus(const Interval& rho) const;

  // Where (M1 Since_rho M2) holds, with *this the extent of M1 and `m2` the
  // extent of M2.
  IntervalSet Since(const IntervalSet& m2, const Interval& rho) const;
  // Where (M1 Until_rho M2) holds, analogously.
  IntervalSet Until(const IntervalSet& m2, const Interval& rho) const;

  // The convex hull <lo of first component, hi of last component>. O(1) on
  // the normalized representation; must not be called on an empty set. The
  // join planner uses hulls as cheap overlap prefilters before paying for
  // exact Intersect.
  Interval Hull() const;

  // True iff every component is a single point; fills `points` if non-null.
  bool IsPunctualOnly(std::vector<Rational>* points = nullptr) const;

  // "{[1,3) [5,5]}".
  std::string ToString() const;

  friend bool operator==(const IntervalSet& a, const IntervalSet& b) {
    return a.intervals_ == b.intervals_;
  }
  friend bool operator!=(const IntervalSet& a, const IntervalSet& b) {
    return !(a == b);
  }

  std::vector<Interval>::const_iterator begin() const {
    return intervals_.begin();
  }
  std::vector<Interval>::const_iterator end() const {
    return intervals_.end();
  }

 private:
  std::vector<Interval> intervals_;
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& set);

}  // namespace dmtl

#endif  // DMTL_TEMPORAL_INTERVAL_SET_H_
