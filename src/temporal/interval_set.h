#ifndef DMTL_TEMPORAL_INTERVAL_SET_H_
#define DMTL_TEMPORAL_INTERVAL_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/temporal/interval.h"
#include "src/temporal/small_ivec.h"

namespace dmtl {

// A set of rational time points represented as a normalized sequence of
// intervals: sorted, pairwise disjoint, and maximally coalesced (no two
// stored intervals could be merged into one). This is the temporal extent of
// a ground atom in the materialization, and the working currency of rule
// evaluation.
//
// Coalescing respects the dense order on Q: [5,5] and [6,6] remain two
// components (the open gap (5,6) is not covered), while [1,3) and [3,5]
// coalesce to [1,5].
//
// Storage is a SmallIntervalVec: the 1-2 component sets that dominate the
// contract workload (punctual row extents, clamped emissions, insertion
// deltas) live inline without heap allocation.
class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(const Interval& iv) { intervals_.push_back(iv); }

  // Builds a normalized set from arbitrary (unsorted, overlapping) input in
  // a single sort + coalescing sweep.
  static IntervalSet FromIntervals(const std::vector<Interval>& ivs);

  bool IsEmpty() const { return intervals_.empty(); }
  size_t size() const { return intervals_.size(); }
  const SmallIntervalVec& intervals() const { return intervals_; }

  bool Contains(const Rational& t) const;
  bool Contains(const Interval& iv) const;
  bool ContainsSet(const IntervalSet& other) const;

  // Adds `iv` and returns the portion of `iv` that was not already covered
  // (the semi-naive delta of this insertion; empty when `iv` was already
  // fully contained).
  IntervalSet Insert(const Interval& iv);

  // Adds `iv` without materializing the delta (cheaper when the caller does
  // not need to know what was new).
  void Add(const Interval& iv);

  // Set algebra (all results normalized).
  //
  // UnionWith merges `other` in a single coalescing sweep (one pass over
  // both component lists) instead of one O(n) Insert per component;
  // UnionWithDelta additionally returns the newly covered portion of
  // `other` - the interval-level delta the semi-naive engine propagates.
  void UnionWith(const IntervalSet& other);
  IntervalSet UnionWithDelta(const IntervalSet& other);
  IntervalSet Intersect(const IntervalSet& other) const;
  IntervalSet Intersect(const Interval& iv) const;
  IntervalSet Subtract(const IntervalSet& other) const;
  // All time points NOT in this set.
  IntervalSet Complement() const;

  IntervalSet Shift(const Rational& delta) const;

  // --- MTL operator transforms on the full extent of an atom --------------
  // These are exact under normalization: a box/since window is an interval
  // and therefore must fit inside a single maximal component.
  IntervalSet DiamondMinus(const Interval& rho) const;
  IntervalSet BoxMinus(const Interval& rho) const;
  IntervalSet DiamondPlus(const Interval& rho) const;
  IntervalSet BoxPlus(const Interval& rho) const;

  // Where (M1 Since_rho M2) holds, with *this the extent of M1 and `m2` the
  // extent of M2.
  IntervalSet Since(const IntervalSet& m2, const Interval& rho) const;
  // Where (M1 Until_rho M2) holds, analogously.
  IntervalSet Until(const IntervalSet& m2, const Interval& rho) const;

  // The convex hull <lo of first component, hi of last component>. O(1) on
  // the normalized representation; must not be called on an empty set. The
  // join planner uses hulls as cheap overlap prefilters before paying for
  // exact Intersect (hot enough that it lives in the header).
  Interval Hull() const { return intervals_.front().Hull(intervals_.back()); }

  // True iff every component is a single point; fills `points` if non-null.
  bool IsPunctualOnly(std::vector<Rational>* points = nullptr) const;

  // Process-wide count of bulk coalescing sweeps (UnionWith/UnionWithDelta
  // merges and FromIntervals builds), surfaced in EngineStats. Monotone and
  // global: callers snapshot before/after the region they account.
  static uint64_t BulkMergeCount();

  // Pins the backing storage to the general heap (migrating any arena
  // buffer) so this set may outlive the round barrier. Called by the
  // persistence points: relation storage, operator memos, guard caches.
  // See docs/ENGINE.md, "Memory architecture".
  void MarkPersistent() { intervals_.MarkPersistent(); }
  // Discards an arena-backed buffer (and the contents) without copying;
  // for reusable scratch slots that survive a RoundArena::Reset().
  void ReleaseArenaStorage() { intervals_.ReleaseArenaStorage(); }

  // "{[1,3) [5,5]}".
  std::string ToString() const;

  friend bool operator==(const IntervalSet& a, const IntervalSet& b) {
    return a.intervals_ == b.intervals_;
  }
  friend bool operator!=(const IntervalSet& a, const IntervalSet& b) {
    return !(a == b);
  }

  const Interval* begin() const { return intervals_.begin(); }
  const Interval* end() const { return intervals_.end(); }

 private:
  SmallIntervalVec intervals_;
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& set);

}  // namespace dmtl

#endif  // DMTL_TEMPORAL_INTERVAL_SET_H_
