#include "src/temporal/interval.h"

#include <cassert>

namespace dmtl {

namespace {

// Sum of bound positions used by Minkowski dilation: infinite dominates,
// openness is contagious.
Bound AddBounds(const Bound& a, const Bound& b) {
  if (a.infinite || b.infinite) return Bound::Infinite();
  return {a.value + b.value, a.open || b.open, false};
}

Bound SubBounds(const Bound& a, const Bound& b) {
  if (a.infinite || b.infinite) return Bound::Infinite();
  return {a.value - b.value, a.open || b.open, false};
}

}  // namespace

Interval Interval::Point(const Rational& t) {
  return Interval(Bound::Closed(t), Bound::Closed(t));
}

Interval Interval::Closed(const Rational& lo, const Rational& hi) {
  assert(lo <= hi);
  return Interval(Bound::Closed(lo), Bound::Closed(hi));
}

Interval Interval::Open(const Rational& lo, const Rational& hi) {
  assert(lo < hi);
  return Interval(Bound::Open(lo), Bound::Open(hi));
}

Interval Interval::ClosedOpen(const Rational& lo, const Rational& hi) {
  assert(lo < hi);
  return Interval(Bound::Closed(lo), Bound::Open(hi));
}

Interval Interval::OpenClosed(const Rational& lo, const Rational& hi) {
  assert(lo < hi);
  return Interval(Bound::Open(lo), Bound::Closed(hi));
}

Interval Interval::All() {
  return Interval(Bound::Infinite(), Bound::Infinite());
}

Interval Interval::AtLeast(const Rational& t) {
  return Interval(Bound::Closed(t), Bound::Infinite());
}

Interval Interval::AtMost(const Rational& t) {
  return Interval(Bound::Infinite(), Bound::Closed(t));
}

std::optional<Rational> Interval::Length() const {
  if (lo_.infinite || hi_.infinite) return std::nullopt;
  return hi_.value - lo_.value;
}

Interval Interval::Shift(const Rational& delta) const {
  Bound lo = lo_;
  Bound hi = hi_;
  if (!lo.infinite) lo.value = lo.value + delta;
  if (!hi.infinite) hi.value = hi.value + delta;
  return Interval(lo, hi);
}

Interval Interval::DiamondMinus(const Interval& rho) const {
  // t in I (+) rho.
  Bound lo = lo_.infinite ? Bound::Infinite() : AddBounds(lo_, rho.lo());
  Bound hi = hi_.infinite ? Bound::Infinite() : AddBounds(hi_, rho.hi());
  auto out = Make(lo, hi);
  assert(out.has_value());
  return *out;
}

std::optional<Interval> Interval::BoxMinus(const Interval& rho) const {
  // t such that <t - rho.hi, t - rho.lo> is contained in I.
  Bound lo;
  if (rho.hi().infinite) {
    // The window reaches back to -inf: only satisfiable on facts that hold
    // on an infinite past.
    if (!lo_.infinite) return std::nullopt;
    lo = Bound::Infinite();
  } else if (lo_.infinite) {
    lo = Bound::Infinite();
  } else {
    // Result closed when rho's upper endpoint is excluded from the window
    // (the window is open there, so the fact's own endpoint suffices).
    bool open = rho.hi().open ? false : lo_.open;
    lo = Bound{lo_.value + rho.hi().value, open, false};
  }
  Bound hi;
  if (hi_.infinite) {
    hi = Bound::Infinite();
  } else {
    bool open = rho.lo().open ? false : hi_.open;
    hi = Bound{hi_.value + rho.lo().value, open, false};
  }
  return Make(lo, hi);
}

Interval Interval::DiamondPlus(const Interval& rho) const {
  // t in <lo - rho.hi, hi - rho.lo>.
  Bound lo = lo_.infinite ? Bound::Infinite() : SubBounds(lo_, rho.hi());
  if (!lo_.infinite && rho.hi().infinite) lo = Bound::Infinite();
  Bound hi = hi_.infinite ? Bound::Infinite() : SubBounds(hi_, rho.lo());
  auto out = Make(lo, hi);
  assert(out.has_value());
  return *out;
}

std::optional<Interval> Interval::BoxPlus(const Interval& rho) const {
  // t such that <t + rho.lo, t + rho.hi> is contained in I.
  Bound lo;
  if (lo_.infinite) {
    lo = Bound::Infinite();
  } else {
    bool open = rho.lo().open ? false : lo_.open;
    lo = Bound{lo_.value - rho.lo().value, open, false};
  }
  Bound hi;
  if (rho.hi().infinite) {
    if (!hi_.infinite) return std::nullopt;
    hi = Bound::Infinite();
  } else if (hi_.infinite) {
    hi = Bound::Infinite();
  } else {
    bool open = rho.hi().open ? false : hi_.open;
    hi = Bound{hi_.value - rho.hi().value, open, false};
  }
  return Make(lo, hi);
}

std::string Interval::ToString() const {
  std::string out;
  out += lo_.open ? '(' : '[';
  out += lo_.infinite ? "-inf" : lo_.value.ToString();
  out += ',';
  out += hi_.infinite ? "+inf" : hi_.value.ToString();
  out += hi_.open ? ')' : ']';
  return out;
}

bool operator==(const Interval& a, const Interval& b) {
  auto eq = [](const Bound& x, const Bound& y) {
    if (x.infinite != y.infinite) return false;
    if (x.infinite) return true;
    return x.value == y.value && x.open == y.open;
  };
  return eq(a.lo_, b.lo_) && eq(a.hi_, b.hi_);
}

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << iv.ToString();
}

}  // namespace dmtl
