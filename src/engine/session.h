#ifndef DMTL_ENGINE_SESSION_H_
#define DMTL_ENGINE_SESSION_H_

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "src/ast/program.h"
#include "src/common/status.h"
#include "src/eval/seminaive.h"
#include "src/storage/database.h"
#include "src/storage/snapshot.h"

namespace dmtl {

// Configuration shared by every session shape. (The pre-facade name
// StreamingOptions aliases this in src/streaming/session.h.)
struct SessionOptions {
  // Engine knobs (threads, memos, chain acceleration, budgets...).
  // min_time / max_time / provenance are managed by the session and must be
  // left unset. enable_streaming = false (or DMTL_DISABLE_STREAMING=1)
  // selects the batch shape: the identical external contract, re-derived by
  // a cold batch materialization per operation.
  EngineOptions engine;

  // Initial window minimum and watermark: the session derives nothing below
  // this time, and the first Advance must not precede it.
  Rational start_time;

  // Sliding-window length. When set, Advance(t) automatically slides the
  // window minimum up to t - *horizon, retracting expired coverage. When
  // unset, the window only moves via explicit Slide calls.
  std::optional<Rational> horizon;

  // Record DerivationRecord provenance (required for Explain and for the
  // checkpoint provenance-coverage checks; retraction prunes it).
  bool track_provenance = true;
};

// The unified session surface: one vocabulary for every long-lived
// materialization shape the engine offers.
//
//   Create / Restore  -> Result<std::unique_ptr<EngineSession>>
//   Push / Advance / Slide -> Status
//   Snapshot          -> Result<SessionSnapshot>
//
// Batch one-shot sessions (cold re-materialization per operation),
// incremental streaming sessions, and fleet-hosted sessions (src/fleet/)
// all implement it, so callers - cli, benches, the fleet server - program
// against one API instead of the three shapes that existed before.
//
// Invariant (shared by every implementation, checked by the streaming and
// snapshot tests): after any operation sequence, db() is byte-identical to
// one cold Materialize over input_log() with min_time = window_min() and
// max_time = watermark().
class EngineSession {
 public:
  // Builds a fresh session at options.start_time. The implementation is
  // chosen by the resolved options (see SessionOptions::engine): streaming
  // by default, batch when streaming is disabled.
  static Result<std::unique_ptr<EngineSession>> Create(
      const Program& program, const SessionOptions& options);

  // Rebuilds a session warm from a checkpoint (see src/storage/snapshot.h):
  // window position, database, input-log tail, open step channels, and
  // provenance are reinstated, and the restored session is byte-identical
  // to its uninterrupted twin under any continuation schedule. The
  // snapshot's program fingerprint must match `program`. The snapshot's
  // window/horizon/provenance settings take precedence over `options`
  // (engine knobs - threads, budgets, acceleration - come from `options`,
  // so a restore may run degraded).
  static Result<std::unique_ptr<EngineSession>> Restore(
      const Program& program, const SessionOptions& options,
      const SessionSnapshot& snapshot);

  virtual ~EngineSession() = default;

  EngineSession(const EngineSession&) = delete;
  EngineSession& operator=(const EngineSession&) = delete;

  // Logs and inserts one input fact. After the first Advance, the fact's
  // interval must lie strictly above the watermark.
  virtual Status Push(const Fact& fact) = 0;

  // Steps the predicate's channel to `args` at time `t` (strictly after the
  // channel's previous step / extension). Pushing the same args again is a
  // no-op: the step simply continues.
  virtual Status PushStep(PredicateId pred, Tuple args,
                          const Rational& t) = 0;
  Status PushStep(std::string_view pred, Tuple args, const Rational& t) {
    return PushStep(InternPredicate(pred), std::move(args), t);
  }

  // Extends all open step channels through `t`, raises the watermark to `t`
  // and derives every consequence in the new band. With `horizon` set, then
  // slides the window minimum up to t - *horizon. Per-operation engine
  // stats (this event's work only) land in `stats` when given.
  virtual Status Advance(const Rational& t, EngineStats* stats = nullptr) = 0;

  // Slides the window minimum up to `new_min` (window_min < new_min <=
  // watermark): expired coverage is retracted, its consequences un-derived,
  // provenance pruned, and the boundary region re-derived.
  virtual Status Slide(const Rational& new_min,
                       EngineStats* stats = nullptr) = 0;

  // Checkpoints the full session state at the current round barrier.
  // Refused while the database is an under-approximation after a failed
  // operation (the next operation heals first).
  virtual Result<SessionSnapshot> Snapshot() const = 0;

  virtual const Database& db() const = 0;
  virtual const std::vector<DerivationRecord>& provenance() const = 0;
  virtual const Rational& watermark() const = 0;
  virtual const Rational& window_min() const = 0;
  // The logged inputs, clamped by past slides (step channels appear as
  // their logged pieces).
  virtual const std::vector<Fact>& input_log() const = 0;

 protected:
  EngineSession() = default;
};

}  // namespace dmtl

#endif  // DMTL_ENGINE_SESSION_H_
