#include "src/engine/session.h"

#include <utility>

#include "src/streaming/session.h"

namespace dmtl {

// Both factories delegate to StreamingSession, which implements the two
// non-hosted shapes behind the facade: streaming (default) and batch
// (enable_streaming = false / DMTL_DISABLE_STREAMING=1). Fleet-hosted
// sessions wrap one of these per contract (src/fleet/).

Result<std::unique_ptr<EngineSession>> EngineSession::Create(
    const Program& program, const SessionOptions& options) {
  DMTL_ASSIGN_OR_RETURN(std::unique_ptr<StreamingSession> session,
                        StreamingSession::Create(program, options));
  return std::unique_ptr<EngineSession>(std::move(session));
}

Result<std::unique_ptr<EngineSession>> EngineSession::Restore(
    const Program& program, const SessionOptions& options,
    const SessionSnapshot& snapshot) {
  DMTL_ASSIGN_OR_RETURN(std::unique_ptr<StreamingSession> session,
                        StreamingSession::Restore(program, options, snapshot));
  return std::unique_ptr<EngineSession>(std::move(session));
}

}  // namespace dmtl
