#ifndef DMTL_ENGINE_REASONER_H_
#define DMTL_ENGINE_REASONER_H_

#include <string>
#include <utility>
#include <vector>

#include "src/eval/seminaive.h"
#include "src/parser/parser.h"

namespace dmtl {

// The public entry point of the DatalogMTL engine (our stand-in for the
// Temporal Vadalog system the paper runs on).
//
//   dmtl::Reasoner reasoner(options);
//   auto unit = dmtl::Parser::Parse(program_text).value();
//   dmtl::Database db = std::move(unit.database);
//   auto stats = reasoner.Materialize(unit.program, &db);
//   for (auto& [t, tuple] : dmtl::Reasoner::Series(db, "frs")) { ... }
class Reasoner {
 public:
  explicit Reasoner(EngineOptions options = {}) : options_(options) {}

  const EngineOptions& options() const { return options_; }

  // Runs the chase: augments `db` in place with all facts entailed by the
  // program and returns run statistics.
  Result<EngineStats> Materialize(const Program& program, Database* db) const;

  // Parses and materializes in one step; returns the augmented database.
  Result<Database> Run(const std::string& program_text,
                       const Database& input) const;

  // --- query helpers over a (materialized) database -----------------------

  // Tuples of `pred` that hold at time t, deterministically ordered.
  static std::vector<Tuple> TuplesAt(const Database& db,
                                     std::string_view pred, const Rational& t);

  // Entailment against a *materialized* database: does P(tuple) hold
  // throughout `iv`? ((Pi, D) |= P(a)@rho once the chase has run.)
  static bool Entails(const Database& db, std::string_view pred,
                      const Tuple& tuple, const Interval& iv);

  // Parses "pred(arg, ...)@interval ." and checks it against `db`.
  static Result<bool> Entails(const Database& db, const std::string& fact);

  // Filters a provenance log (EngineOptions::provenance) down to the
  // derivations explaining why P(tuple) holds at t - the rule applications
  // whose derived pieces cover the point.
  static std::vector<DerivationRecord> Explain(
      const std::vector<DerivationRecord>& provenance, std::string_view pred,
      const Tuple& tuple, const Rational& t);

  // Step series of a predicate: one (start-time, tuple) entry per stored
  // maximal interval, sorted by start time (entries with an infinite start
  // are ordered first). For state predicates like frs(F) this yields the
  // value-change series the paper's Figure 4 plots.
  static std::vector<std::pair<Rational, Tuple>> Series(
      const Database& db, std::string_view pred);

 private:
  EngineOptions options_;
};

}  // namespace dmtl

#endif  // DMTL_ENGINE_REASONER_H_
