#include "src/engine/reasoner.h"

#include <algorithm>

namespace dmtl {

Result<EngineStats> Reasoner::Materialize(const Program& program,
                                          Database* db) const {
  EngineStats stats;
  DMTL_RETURN_IF_ERROR(dmtl::Materialize(program, db, options_, &stats));
  return stats;
}

Result<Database> Reasoner::Run(const std::string& program_text,
                               const Database& input) const {
  DMTL_ASSIGN_OR_RETURN(Parser::ParsedUnit unit, Parser::Parse(program_text));
  Database db = input;
  db.MergeFrom(unit.database);
  DMTL_RETURN_IF_ERROR(dmtl::Materialize(unit.program, &db, options_));
  return db;
}

bool Reasoner::Entails(const Database& db, std::string_view pred,
                       const Tuple& tuple, const Interval& iv) {
  const Relation* rel = db.Find(pred);
  if (rel == nullptr) return false;
  const IntervalSet* set = rel->Find(tuple);
  return set != nullptr && set->Contains(iv);
}

Result<bool> Reasoner::Entails(const Database& db, const std::string& fact) {
  DMTL_ASSIGN_OR_RETURN(Database parsed, Parser::ParseDatabase(fact));
  if (parsed.NumPredicates() != 1 || parsed.NumIntervals() != 1) {
    return Status::InvalidArgument("expected exactly one fact: " + fact);
  }
  for (const auto& [pred, rel] : parsed.relations()) {
    for (const auto& [tuple, set] : rel.data()) {
      for (const Interval& iv : set) {
        if (!Entails(db, PredicateName(pred), tuple, iv)) return false;
      }
    }
  }
  return true;
}

std::vector<DerivationRecord> Reasoner::Explain(
    const std::vector<DerivationRecord>& provenance, std::string_view pred,
    const Tuple& tuple, const Rational& t) {
  PredicateId id = InternPredicate(pred);
  std::vector<DerivationRecord> out;
  for (const DerivationRecord& record : provenance) {
    if (record.predicate == id && record.tuple == tuple &&
        record.piece.Contains(t)) {
      out.push_back(record);
    }
  }
  return out;
}

std::vector<Tuple> Reasoner::TuplesAt(const Database& db,
                                      std::string_view pred,
                                      const Rational& t) {
  std::vector<Tuple> out;
  const Relation* rel = db.Find(pred);
  if (rel == nullptr) return out;
  for (const auto& [tuple, set] : rel->data()) {
    if (set.Contains(t)) out.push_back(tuple);
  }
  std::sort(out.begin(), out.end(),
            [](const Tuple& a, const Tuple& b) {
              return std::lexicographical_compare(a.begin(), a.end(),
                                                  b.begin(), b.end());
            });
  return out;
}

std::vector<std::pair<Rational, Tuple>> Reasoner::Series(
    const Database& db, std::string_view pred) {
  std::vector<std::pair<Rational, Tuple>> out;
  std::vector<Tuple> infinite_start;
  const Relation* rel = db.Find(pred);
  if (rel == nullptr) return out;
  for (const auto& [tuple, set] : rel->data()) {
    for (const Interval& iv : set) {
      if (iv.lo().infinite) {
        infinite_start.push_back(tuple);
      } else {
        out.emplace_back(iv.lo().value, tuple);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return std::lexicographical_compare(a.second.begin(),
                                                  a.second.end(),
                                                  b.second.begin(),
                                                  b.second.end());
            });
  // Entries holding since forever sort before any finite start.
  std::vector<std::pair<Rational, Tuple>> result;
  result.reserve(infinite_start.size() + out.size());
  for (Tuple& t : infinite_start) {
    result.emplace_back(Rational(0), std::move(t));
  }
  result.insert(result.end(), out.begin(), out.end());
  return result;
}

}  // namespace dmtl
