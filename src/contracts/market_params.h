#ifndef DMTL_CONTRACTS_MARKET_PARAMS_H_
#define DMTL_CONTRACTS_MARKET_PARAMS_H_

#include <string>

namespace dmtl {

// Which fee-side convention to apply (the paper is internally inconsistent;
// see DESIGN.md item 3).
enum class FeeConvention {
  // The fee table of Section 3.7 (and the prose): orders that *increase*
  // the skew pay the taker rate, orders that reduce it pay the maker rate.
  kSection37Table,
  // Rules 40-47 as printed (and Example 3.6), which use the opposite sides.
  kPrintedRules,
};

// The ETH-PERP market constants of the paper's Figure 2 plus the two fee
// rates. phi_m = 0.0035 is fixed by Example 3.6; the taker rate is Kwenta's
// era-consistent default.
struct MarketParams {
  double maker_fee = 0.0035;          // phi_m
  double taker_fee = 0.0075;          // phi_t
  double max_funding_rate = 0.1;      // i_max
  double skew_scale_usd = 3.0e8;      // W_max = skew_scale_usd / p_t
  double seconds_per_day = 86400.0;   // epochs per day
  FeeConvention fee_convention = FeeConvention::kSection37Table;

  // Fee rate applied to an order of (signed) size `delta_q` against market
  // skew `k` (the K=0 edge, which the paper leaves undefined, pays maker).
  double FeeRate(double k, double delta_q) const;

  // Instantaneous funding rate i_t for pre-event skew `k` and price `p`
  // (Figure 2): clamp(-k / (skew_scale/p), -1, 1) * i_max / seconds_per_day.
  double InstantaneousRate(double k, double p) const;

  std::string ToString() const;
};

}  // namespace dmtl

#endif  // DMTL_CONTRACTS_MARKET_PARAMS_H_
