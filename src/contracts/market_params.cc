#include "src/contracts/market_params.h"

#include <algorithm>
#include <sstream>

namespace dmtl {

double MarketParams::FeeRate(double k, double delta_q) const {
  bool increases_skew = (k > 0 && delta_q > 0) || (k < 0 && delta_q < 0);
  bool taker;
  if (k == 0) {
    taker = false;  // neutral market: charge the lower rate
  } else if (fee_convention == FeeConvention::kSection37Table) {
    taker = increases_skew;
  } else {
    taker = !increases_skew;
  }
  return taker ? taker_fee : maker_fee;
}

double MarketParams::InstantaneousRate(double k, double p) const {
  double w_max = skew_scale_usd / p;
  double proportional = std::clamp(-k / w_max, -1.0, 1.0);
  return proportional * max_funding_rate / seconds_per_day;
}

std::string MarketParams::ToString() const {
  std::ostringstream os;
  os.precision(17);
  os << "phi_m=" << maker_fee << " phi_t=" << taker_fee
     << " i_max=" << max_funding_rate << " skew_scale=" << skew_scale_usd
     << " epochs_per_day=" << seconds_per_day << " fee_convention="
     << (fee_convention == FeeConvention::kSection37Table ? "section-3.7"
                                                          : "printed-rules");
  return os.str();
}

}  // namespace dmtl
