#ifndef DMTL_CONTRACTS_RISK_RULES_H_
#define DMTL_CONTRACTS_RISK_RULES_H_

#include <string>

#include "src/ast/program.h"
#include "src/common/status.h"
#include "src/contracts/market_params.h"

namespace dmtl {

// The paper's conclusion proposes using the declarative encoding "for
// internal risk management activities, for instance, to be able to swiftly
// react to the evolution of each margin account over time". This module is
// that extension: a supervision layer of pure DatalogMTL rules over the
// contract's state predicates (position, margin, price) that derives
// mark-to-market metrics and alerts. It reads contract state and feeds
// nothing back - supervision, not intervention.
//
// Derived predicates:
//   uPnl(A, U)               unrealized PnL of the open position
//   notionalExposure(A, X)   |S * p_t| in dollars
//   equity(A, E)             margin + unrealized PnL
//   marginRatio(A, R)        equity / exposure (only while exposed)
//   liquidatable(A)          marginRatio below the maintenance ratio
//   liquidationAlert(A)      rising edge of liquidatable
//   largeExposure(A)         exposure above the reporting threshold
struct RiskParams {
  double maintenance_ratio = 0.05;
  double large_exposure_usd = 100000.0;
};

std::string RiskMonitorProgramText(const RiskParams& params = {});

Result<Program> RiskMonitorProgram(const RiskParams& params = {});

// The ETH-PERP contract composed with the risk monitor, as one program.
Result<Program> EthPerpWithRiskMonitor(const MarketParams& market = {},
                                       const RiskParams& risk = {});

}  // namespace dmtl

#endif  // DMTL_CONTRACTS_RISK_RULES_H_
