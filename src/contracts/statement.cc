#include "src/contracts/statement.h"

#include <map>
#include <sstream>

#include "src/contracts/trade_extractor.h"

namespace dmtl {

namespace {

Result<double> BalanceAt(const Database& db, const std::string& account,
                         int64_t t) {
  return MarginAt(db, account, t);
}

}  // namespace

std::string StatementLine::ToString() const {
  std::ostringstream os;
  os.precision(10);
  os << "t=" << time << "  " << kind;
  if (kind == "deposit" || kind == "order") os << " " << amount;
  os << "  balance=" << balance_after;
  if (!note.empty()) os << "  (" << note << ")";
  return os.str();
}

std::string AccountStatement::ToString() const {
  std::ostringstream os;
  os.precision(10);
  os << "=== statement for " << account << " ===\n";
  for (const StatementLine& line : lines) {
    os << "  " << line.ToString() << "\n";
  }
  os << "  totals: deposits=" << total_deposits << " pnl=" << total_pnl
     << " fees=" << total_fees << " funding=" << total_funding
     << " final=" << final_balance
     << (withdrawn ? " (withdrawn)" : " (still open)") << "\n";
  return os.str();
}

Result<std::vector<AccountStatement>> BuildStatements(
    const Database& db, const Session& session) {
  DMTL_ASSIGN_OR_RETURN(std::vector<TradeSettlement> trades,
                        ExtractTrades(db));
  std::map<std::pair<std::string, int64_t>, const TradeSettlement*> by_key;
  for (const TradeSettlement& t : trades) {
    by_key[{t.account, t.time}] = &t;
  }

  std::map<std::string, AccountStatement> statements;
  for (const MarketEvent& e : session.events) {
    AccountStatement& statement = statements[e.account];
    statement.account = e.account;
    StatementLine line;
    line.time = e.time;
    switch (e.kind) {
      case EventKind::kTransferMargin: {
        line.kind = "deposit";
        line.amount = e.amount;
        statement.total_deposits += e.amount;
        DMTL_ASSIGN_OR_RETURN(line.balance_after,
                              BalanceAt(db, e.account, e.time));
        break;
      }
      case EventKind::kModifyPosition: {
        line.kind = "order";
        line.amount = e.amount;
        DMTL_ASSIGN_OR_RETURN(line.balance_after,
                              BalanceAt(db, e.account, e.time));
        break;
      }
      case EventKind::kClosePosition: {
        line.kind = "close";
        auto it = by_key.find({e.account, e.time});
        if (it == by_key.end()) {
          return Status::NotFound("no settlement for close of " + e.account +
                                  " at t=" + std::to_string(e.time));
        }
        const TradeSettlement& t = *it->second;
        statement.total_pnl += t.pnl;
        statement.total_fees += t.fee;
        statement.total_funding += t.funding;
        DMTL_ASSIGN_OR_RETURN(line.balance_after,
                              BalanceAt(db, e.account, e.time));
        std::ostringstream note;
        note.precision(10);
        note << "pnl=" << t.pnl << " fee=" << t.fee
             << " funding=" << t.funding;
        line.note = note.str();
        break;
      }
      case EventKind::kWithdraw: {
        line.kind = "withdraw";
        statement.withdrawn = true;
        // The margin last holds the tick before the withdrawal.
        DMTL_ASSIGN_OR_RETURN(line.balance_after,
                              BalanceAt(db, e.account, e.time - 1));
        statement.final_balance = line.balance_after;
        break;
      }
    }
    statement.lines.push_back(std::move(line));
  }

  std::vector<AccountStatement> out;
  out.reserve(statements.size());
  for (auto& [account, statement] : statements) {
    if (!statement.withdrawn && !statement.lines.empty()) {
      statement.final_balance = statement.lines.back().balance_after;
    }
    out.push_back(std::move(statement));
  }
  return out;
}

}  // namespace dmtl
