#ifndef DMTL_CONTRACTS_TRADE_EXTRACTOR_H_
#define DMTL_CONTRACTS_TRADE_EXTRACTOR_H_

#include <vector>

#include "src/common/status.h"
#include "src/contracts/settlement.h"
#include "src/storage/database.h"

namespace dmtl {

// Reads the trading outcomes back out of a materialized ETH-PERP database
// (the DatalogMTL side of the paper's Section 4 comparison).

// Joins pnl / finalFee / funding facts per (account, close tick); errors if
// a close settled partially (which would indicate a program bug).
Result<std::vector<TradeSettlement>> ExtractTrades(const Database& db);

// The frs(F) value holding at each queried tick (event times from the
// session). Errors when a tick has no or multiple frs values.
Result<std::vector<FrsPoint>> ExtractFrsAt(const Database& db,
                                           const std::vector<int64_t>& times);

// The margin of `account` holding at tick t; errors when absent/ambiguous.
Result<double> MarginAt(const Database& db, const std::string& account,
                        int64_t t);

}  // namespace dmtl

#endif  // DMTL_CONTRACTS_TRADE_EXTRACTOR_H_
