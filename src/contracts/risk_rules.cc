#include "src/contracts/risk_rules.h"

#include <cstdio>

#include "src/contracts/eth_perp_program.h"
#include "src/parser/parser.h"

namespace dmtl {

namespace {

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s(buf);
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos) {
    s += ".0";
  }
  return s;
}

}  // namespace

std::string RiskMonitorProgramText(const RiskParams& p) {
  std::string text;
  text += "% ---- RISK MONITOR (paper Section 5 extension) ----\n";
  text +=
      "% Mark-to-market metrics per account, at every time point.\n"
      "uPnl(A, U) :- position(A, S, N), price(P), U = S * P - N .\n"
      "notionalExposure(A, X) :- position(A, S, N), price(P), "
      "X = abs(S * P) .\n"
      "equity(A, E) :- margin(A, M), uPnl(A, U), E = M + U .\n"
      "marginRatio(A, R) :- equity(A, E), notionalExposure(A, X), "
      "X > 0.0, R = E / X .\n";
  text += "% Accounts below the maintenance ratio of " +
          Fmt(p.maintenance_ratio) + ".\n";
  text += "liquidatable(A) :- marginRatio(A, R), R < " +
          Fmt(p.maintenance_ratio) + " .\n";
  text +=
      "% Rising edge: the first tick an account becomes liquidatable.\n"
      "liquidationAlert(A) :- liquidatable(A), "
      "not boxminus liquidatable(A) .\n";
  text += "% Reporting threshold for supervisors: exposure above " +
          Fmt(p.large_exposure_usd) + " USD.\n";
  text += "largeExposure(A) :- notionalExposure(A, X), X > " +
          Fmt(p.large_exposure_usd) + " .\n";
  return text;
}

Result<Program> RiskMonitorProgram(const RiskParams& params) {
  return Parser::ParseProgram(RiskMonitorProgramText(params));
}

Result<Program> EthPerpWithRiskMonitor(const MarketParams& market,
                                       const RiskParams& risk) {
  return Parser::ParseProgram(EthPerpProgramText(market) + "\n" +
                              RiskMonitorProgramText(risk));
}

}  // namespace dmtl
