#ifndef DMTL_CONTRACTS_ETH_PERP_PROGRAM_H_
#define DMTL_CONTRACTS_ETH_PERP_PROGRAM_H_

#include <string>

#include "src/ast/program.h"
#include "src/common/status.h"
#include "src/contracts/market_params.h"

namespace dmtl {

// The ETH-PERP perpetual-future smart contract encoded in DatalogMTL —
// the paper's Section 3, rules 1-48, organized in the five modules MARGIN,
// POSITION, RETURNS, F-RATE and FEES. Deviations from the printed rules
// (corrections of typos, the K=0 fee edge, the marketOpen guard) are listed
// in DESIGN.md and marked inline in the generated text.
//
// Input (EDB) predicates the caller provides as temporal facts:
//   tranM(A, M)    deposit order, margin transfer of M dollars by account A
//   withdraw(A)    account shutdown / full withdrawal
//   modPos(A, S)   open/modify a position by S units (sign = side)
//   closePos(A)    close the position, settling returns/fees/funding
//   price(P)       the oracle price of ETH-PERP (step-function intervals)
//   start()        market (analysis-window) start point
//   marketEnd()    market (analysis-window) end point
//   skew(K0)@t0, frs(0.0)@t0   initial market skew and funding sequence
//
// Derived state: isOpen, margin, order, position, pnl, event, skew, tdiff,
// tdelta, rate, clampR, unrFund, frs, indF, funding, fee, finalFee,
// marketOpen.
//
// Returns the program text so it can be inspected, printed and shipped (the
// paper's artifact is the text itself).
std::string EthPerpProgramText(const MarketParams& params = {});

// Parses EthPerpProgramText into a Program.
Result<Program> EthPerpProgram(const MarketParams& params = {});

}  // namespace dmtl

#endif  // DMTL_CONTRACTS_ETH_PERP_PROGRAM_H_
