#include "src/contracts/eth_perp_program.h"

#include <cstdio>

#include "src/parser/parser.h"

namespace dmtl {

namespace {

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s(buf);
  // Ensure the literal lexes as a number with a decimal point.
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos) {
    s += ".0";
  }
  return s;
}

// One fee rule. `stage` is "modPos" or "closePos"; sign conditions on skew
// K and trade delta S select the rate.
std::string FeeRule(const MarketParams& p, bool close, const char* k_cmp,
                    const char* s_cmp, double k_sign, double s_sign) {
  // delta_q is S for an order and -S for a close.
  double delta_sign = close ? -s_sign : s_sign;
  double rate = p.FeeRate(k_sign, delta_sign);
  std::string head = close ? "finalFee(A, C)" : "fee(A, C)";
  std::string out = head + " :- ";
  if (close) {
    out += "closePos(A), boxminus position(A, S, N), ";
  } else {
    out += "modPos(A, S), ";
  }
  out += "price(P), diamondminus fee(A, OldC), skew(K), ";
  out += std::string("K ") + k_cmp + " 0.0, S " + s_cmp + " 0.0, ";
  out += "C = OldC + abs(S * P * " + Fmt(rate) + ") .\n";
  return out;
}

}  // namespace

std::string EthPerpProgramText(const MarketParams& p) {
  std::string text;
  text += "% ============================================================\n";
  text += "% ETH-PERP perpetual future in DatalogMTL (EDBT'23, Section 3)\n";
  text += "% Market parameters: " + p.ToString() + "\n";
  text += "% All metric operators default to the paper's [1,1] window.\n";
  text += "% ============================================================\n\n";

  text += "% ---- market lifetime (DESIGN.md item 4: the paper's bare\n";
  text += "% isOpen()/isOpen(_) guard, read as \"the market is open\") ----\n";
  text +=
      "marketOpen() :- start() .\n"
      "marketOpen() :- boxminus marketOpen(), not marketEnd() .\n\n";

  text += "% ---- MARGIN (rules 1-9) ----\n";
  text +=
      "% (1) a first transfer opens the margin account\n"
      "isOpen(A) :- tranM(A, M) .\n"
      "% (2) the account stays open until a withdrawal\n"
      "isOpen(A) :- boxminus isOpen(A), not withdraw(A) .\n"
      "% (3) a first-time deposit initializes the margin\n"
      "margin(A, M) :- tranM(A, M), not boxminus isOpen(A) .\n"
      "% (4,5,6) events that change the margin\n"
      "changeM(A) :- withdraw(A) .\n"
      "changeM(A) :- tranM(A, M) .\n"
      "changeM(A) :- closePos(A) .\n"
      "% (7) the margin persists when nothing changes it\n"
      "margin(A, M) :- diamondminus margin(A, M), not changeM(A) .\n"
      "% (8) later deposits add to the margin\n"
      "margin(A, M) :- boxminus isOpen(A), diamondminus margin(A, X), "
      "tranM(A, Y), M = X + Y .\n"
      "% (9) settlement folds returns, fees and funding into the margin\n"
      "%     (the printed rule elides the finalFee/funding body atoms)\n"
      "margin(A, M) :- diamondminus margin(A, X), pnl(A, PL), "
      "finalFee(A, C), funding(A, IF), M = X + PL - C + IF .\n\n";

  text += "% ---- POSITION (rules 10-15) ----\n";
  text +=
      "% (10) a zero position exists as soon as the margin account opens\n"
      "position(A, S, N) :- tranM(A, M), not boxminus isOpen(A), "
      "S = 0.0, N = 0.0 .\n"
      "% (11,12) the order book\n"
      "order(A, S) :- modPos(A, S) .\n"
      "order(A, S) :- closePos(A), S = 0.0 .\n"
      "% (13) positions persist over time while no order arrives\n"
      "position(A, S, N) :- diamondminus position(A, S, N), "
      "not order(A, _), isOpen(A) .\n"
      "% (14) executing an order updates size and notional\n"
      "position(A, S, N) :- diamondminus position(A, Y, Z), price(P), "
      "modPos(A, X), S = X + Y, N = Z + X * P .\n"
      "% (15) closing resets the position\n"
      "position(A, S, N) :- closePos(A), S = 0.0, N = 0.0 .\n\n";

  text += "% ---- RETURNS (rule 16) ----\n";
  text +=
      "pnl(A, PL) :- closePos(A), boxminus position(A, S, N), price(P), "
      "PL = S * P - N .\n\n";

  text += "% ---- F-RATE: events and skew (rules 17-22) ----\n";
  text +=
      "% (17-20) every interaction is an event; margin events carry S=0\n"
      "%     (DESIGN.md item 5: contributions + one aggregation rule)\n"
      "eventContrib(A, S) :- tranM(A, M), S = 0.0 .\n"
      "eventContrib(A, S) :- withdraw(A), S = 0.0 .\n"
      "eventContrib(A, S) :- modPos(A, S) .\n"
      "eventContrib(A, S) :- closePos(A), boxminus position(A, S0, N), "
      "S = 0.0 - S0 .\n"
      "event(msum(S)) :- eventContrib(A, S) .\n"
      "% (21) the skew persists between events\n"
      "skew(K) :- diamondminus skew(K), not event(_), marketOpen() .\n"
      "% (22) events shift the skew\n"
      "skew(K) :- diamondminus skew(X), event(S), K = X + S .\n\n";

  text += "% ---- F-RATE: time bookkeeping (rules 23-26) ----\n";
  text +=
      "% (23) the paper's unix(t) promotion is the timestamp() builtin\n"
      "tdiff(T, T) :- start(), timestamp(T) .\n"
      "% (24) bounds persist between events\n"
      "tdiff(T1, T2) :- diamondminus tdiff(T1, T2), not event(_), "
      "marketOpen() .\n"
      "% (25) an event moves the window to [previous event, now]\n"
      "tdiff(T2, U) :- diamondminus tdiff(T1, T2), event(S), "
      "timestamp(U) .\n"
      "% (26) seconds elapsed since the previous interaction\n"
      "tdelta(D) :- tdiff(T1, T2), event(S), D = T2 - T1 .\n\n";

  text += "% ---- F-RATE: funding rate sequence (rules 27-33) ----\n";
  text +=
      "% (27) proportional rate against the pre-event skew; W_max = " +
      Fmt(p.skew_scale_usd) + " / P\n" +
      "rate(I) :- event(S), boxminus skew(K), price(P), "
      "I = -K * P / " + Fmt(p.skew_scale_usd) + " .\n" +
      "% (28-30) clamp to [-1, 1] (boundaries close the paper's open ones)\n"
      "clampR(C) :- rate(I), I > 1.0, C = 1.0 .\n"
      "clampR(C) :- rate(I), I < -1.0, C = -1.0 .\n"
      "clampR(I) :- rate(I), I >= -1.0, I <= 1.0 .\n"
      "% (31) funding accrued since the last interaction\n"
      "unrFund(UF) :- clampR(I), price(P), tdelta(D), "
      "UF = I * P * D * " + Fmt(p.max_funding_rate) + " / " +
      Fmt(p.seconds_per_day) + " .\n" +
      "% (32) the sequence persists between events\n"
      "frs(F) :- diamondminus frs(F), not unrFund(_), marketOpen() .\n"
      "% (33) and accumulates on each event\n"
      "frs(F) :- diamondminus frs(X), unrFund(UF), F = X + UF .\n\n";

  text += "% ---- F-RATE: individual funding (rules 34-37) ----\n";
  text +=
      "% (34) opening a position records the current F with zero accrual\n"
      "indF(A, F, AF) :- boxminus position(A, S, N), frs(F), modPos(A, C), "
      "S == 0.0, AF = 0.0 .\n"
      "% (35) persists while no order arrives (isOpen bounds the chain)\n"
      "indF(A, F, AF) :- diamondminus indF(A, F, AF), not order(A, _), "
      "isOpen(A) .\n"
      "% (36) a modification accrues against the previously recorded F\n"
      "%      (corrected per Example 3.5; see DESIGN.md item 1)\n"
      "indF(A, F, AF) :- diamondminus indF(A, PF, PAF), frs(F), "
      "modPos(A, C), boxminus position(A, S, N), "
      "AF = PAF + S * (F - PF) .\n"
      "% (37) settle at close\n"
      "funding(A, IF) :- diamondminus indF(A, PF, AF), closePos(A), "
      "frs(F), boxminus position(A, S, N), IF = AF + S * (F - PF) .\n\n";

  text += "% ---- FEES (rules 38-48) ----\n";
  text +=
      "% (38) cumulative fees start at zero with the account\n"
      "fee(A, C) :- tranM(A, M), not boxminus isOpen(A), C = 0.0 .\n"
      "% (39) persist while no order arrives\n"
      "fee(A, C) :- diamondminus fee(A, C), not order(A, _), isOpen(A) .\n";
  text += "% (40-43) fees on a position modification\n";
  text += FeeRule(p, /*close=*/false, ">", ">", +1, +1);
  text += FeeRule(p, /*close=*/false, "<", ">", -1, +1);
  text += FeeRule(p, /*close=*/false, ">", "<", +1, -1);
  text += FeeRule(p, /*close=*/false, "<", "<", -1, -1);
  text +=
      "% (K = 0 edge, undefined in the paper: charge the maker rate)\n"
      "fee(A, C) :- modPos(A, S), price(P), diamondminus fee(A, OldC), "
      "skew(K), K == 0.0, C = OldC + abs(S * P * " +
      Fmt(p.maker_fee) + ") .\n";
  text += "% (44-47) fees on close (order size taken from the position)\n";
  text += FeeRule(p, /*close=*/true, ">", "<", +1, -1);
  text += FeeRule(p, /*close=*/true, "<", "<", -1, -1);
  text += FeeRule(p, /*close=*/true, ">", ">", +1, +1);
  text += FeeRule(p, /*close=*/true, "<", ">", -1, +1);
  text +=
      "finalFee(A, C) :- closePos(A), boxminus position(A, S, N), "
      "price(P), diamondminus fee(A, OldC), skew(K), K == 0.0, "
      "C = OldC + abs(S * P * " +
      Fmt(p.maker_fee) + ") .\n";
  text +=
      "% (48) reset the running fees for the next trade\n"
      "fee(A, C) :- closePos(A), C = 0.0 .\n";
  return text;
}

Result<Program> EthPerpProgram(const MarketParams& params) {
  return Parser::ParseProgram(EthPerpProgramText(params));
}

}  // namespace dmtl
