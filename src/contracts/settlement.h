#ifndef DMTL_CONTRACTS_SETTLEMENT_H_
#define DMTL_CONTRACTS_SETTLEMENT_H_

#include <cstdint>
#include <string>

namespace dmtl {

// The settlement of one completed trade (what the paper reads back from the
// Mainnet Subgraph for validation: returns, fee, funding per closePos).
struct TradeSettlement {
  std::string account;
  int64_t time = 0;
  double pnl = 0;
  double fee = 0;
  double funding = 0;
};

// One funding-rate-sequence update: F(t_k) after the interaction at t_k.
struct FrsPoint {
  int64_t time = 0;
  double f = 0;
};

}  // namespace dmtl

#endif  // DMTL_CONTRACTS_SETTLEMENT_H_
