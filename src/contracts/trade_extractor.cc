#include "src/contracts/trade_extractor.h"

#include <algorithm>

namespace dmtl {

namespace {

// The single numeric value of a binary predicate keyed by account that
// holds at tick t, e.g. finalFee(acc, C)@t.
Result<double> KeyedValueAt(const Database& db, const char* pred,
                            const Value& account, const Rational& t) {
  const Relation* rel = db.Find(pred);
  if (rel == nullptr) {
    return Status::NotFound(std::string(pred) + " has no facts");
  }
  bool found = false;
  double value = 0;
  for (const auto& [tuple, set] : rel->data()) {
    if (tuple.size() != 2 || tuple[0] != account) continue;
    if (!set.Contains(t)) continue;
    if (found) {
      return Status::EvalError(std::string(pred) + " ambiguous at t=" +
                               t.ToString());
    }
    found = true;
    value = tuple[1].AsDouble();
  }
  if (!found) {
    return Status::NotFound(std::string(pred) + "(" +
                            account.ToString() + ", _) missing at t=" +
                            t.ToString());
  }
  return value;
}

}  // namespace

Result<std::vector<TradeSettlement>> ExtractTrades(const Database& db) {
  std::vector<TradeSettlement> out;
  const Relation* pnl = db.Find("pnl");
  if (pnl == nullptr) return out;  // no trades settled
  for (const auto& [tuple, set] : pnl->data()) {
    if (tuple.size() != 2) continue;
    for (const Interval& iv : set) {
      if (!iv.IsPunctual() || !iv.lo().value.is_integer()) {
        return Status::EvalError("pnl fact with non-punctual extent: " +
                                 set.ToString());
      }
      Rational t = iv.lo().value;
      TradeSettlement trade;
      trade.account = tuple[0].AsSymbolName();
      trade.time = t.numerator();
      trade.pnl = tuple[1].AsDouble();
      DMTL_ASSIGN_OR_RETURN(trade.fee,
                            KeyedValueAt(db, "finalFee", tuple[0], t));
      DMTL_ASSIGN_OR_RETURN(trade.funding,
                            KeyedValueAt(db, "funding", tuple[0], t));
      out.push_back(std::move(trade));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TradeSettlement& a, const TradeSettlement& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.account < b.account;
            });
  return out;
}

Result<std::vector<FrsPoint>> ExtractFrsAt(const Database& db,
                                           const std::vector<int64_t>& times) {
  const Relation* rel = db.Find("frs");
  if (rel == nullptr) return Status::NotFound("frs has no facts");
  std::vector<FrsPoint> out;
  out.reserve(times.size());
  for (int64_t time : times) {
    Rational t(time);
    bool found = false;
    double f = 0;
    for (const auto& [tuple, set] : rel->data()) {
      if (tuple.size() != 1 || !set.Contains(t)) continue;
      if (found) {
        return Status::EvalError("multiple frs values at t=" +
                                 std::to_string(time));
      }
      found = true;
      f = tuple[0].AsDouble();
    }
    if (!found) {
      return Status::NotFound("frs missing at t=" + std::to_string(time));
    }
    out.push_back({time, f});
  }
  return out;
}

Result<double> MarginAt(const Database& db, const std::string& account,
                        int64_t t) {
  return KeyedValueAt(db, "margin", Value::Symbol(account), Rational(t));
}

}  // namespace dmtl
