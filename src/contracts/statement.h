#ifndef DMTL_CONTRACTS_STATEMENT_H_
#define DMTL_CONTRACTS_STATEMENT_H_

#include <string>
#include <vector>

#include "src/chain/events.h"
#include "src/common/status.h"
#include "src/storage/database.h"

namespace dmtl {

// Per-account activity reporting straight from the materialized contract
// state - the paper's Section 5 use case of "automatically reporting
// up-to-date data to authorities, like the size of the position at each
// time point". Balances are read back from the margin facts the DatalogMTL
// program derived (not recomputed), so the statement *is* the contract's
// own account of events.

struct StatementLine {
  int64_t time = 0;
  std::string kind;        // deposit / order / close / withdraw
  double amount = 0;       // method argument (deposit size, order size)
  double balance_after = 0;  // margin holding at this tick per the contract
  std::string note;

  std::string ToString() const;
};

struct AccountStatement {
  std::string account;
  double total_deposits = 0;
  double total_pnl = 0;
  double total_fees = 0;
  double total_funding = 0;
  double final_balance = 0;
  bool withdrawn = false;
  std::vector<StatementLine> lines;

  std::string ToString() const;
};

// Builds one statement per account appearing in the session, against the
// materialized database. Fails if the database was not materialized from
// this session (missing margin/settlement facts).
Result<std::vector<AccountStatement>> BuildStatements(const Database& db,
                                                      const Session& session);

}  // namespace dmtl

#endif  // DMTL_CONTRACTS_STATEMENT_H_
