#ifndef DMTL_STREAMING_SESSION_H_
#define DMTL_STREAMING_SESSION_H_

#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "src/ast/program.h"
#include "src/common/status.h"
#include "src/engine/session.h"
#include "src/eval/incremental.h"
#include "src/eval/seminaive.h"
#include "src/storage/database.h"
#include "src/storage/snapshot.h"

namespace dmtl {

// Pre-facade name of the shared session configuration; kept as an alias
// for one PR while callers migrate to SessionOptions.
using StreamingOptions = SessionOptions;

// A cold batch run over a session's current inputs - the oracle the
// streaming tests compare against, byte for byte.
struct ReplayResult {
  Database db;
  std::vector<DerivationRecord> provenance;
  EngineStats stats;
};

// A live, long-lived materialization session: chain events arrive one at a
// time through Push / PushStep, Advance(t) raises the watermark and
// incrementally derives the new consequences, and Slide (or the horizon
// option) expires old coverage out the back of the window.
//
// This is the engine's implementation of the unified EngineSession surface
// (src/engine/session.h); it provides both session shapes behind that API:
//
//  * streaming (default): the persistent IncrementalMaterializer derives
//    only the new band per advance;
//  * batch (engine.enable_streaming = false, or DMTL_DISABLE_STREAMING=1):
//    the identical external contract, re-derived by a cold batch
//    materialization per operation - the equivalence lane for CI.
//
// Invariant (checked by the streaming tests at every checkpoint): after any
// sequence of operations, db() is byte-identical to ColdReplay().db - one
// batch Materialize over input_log() with min_time = window_min() and
// max_time = watermark().
//
// Step channels. Chain feeds like the price oracle are step functions: the
// pushed value holds until the next update, whose time is unknown when the
// value arrives. PushStep models that without violating watermark finality:
// the session keeps one open channel per predicate and logs the step's
// coverage lazily - a point at the step time, an extension piece up to each
// watermark the channel lives through, and a closing piece when the next
// step arrives. The logged pieces union to exactly the ClosedOpen step
// intervals a batch loader would write.
class StreamingSession : public EngineSession {
 public:
  // Validates the program for streaming eligibility (see
  // IncrementalMaterializer::Create) and builds the persistent engine
  // state. Eligibility is enforced even in batch mode so both lanes accept
  // the same programs.
  static Result<std::unique_ptr<StreamingSession>> Create(
      const Program& program, const SessionOptions& options);

  // Rebuilds a session warm from a checkpoint; see EngineSession::Restore
  // for the precedence and byte-identity contract.
  static Result<std::unique_ptr<StreamingSession>> Restore(
      const Program& program, const SessionOptions& options,
      const SessionSnapshot& snapshot);

  ~StreamingSession() override;

  // Logs and inserts one input fact. After the first Advance, the fact's
  // interval must lie strictly above the watermark.
  Status Push(const Fact& fact) override;

  // Steps the predicate's channel to `args` at time `t` (strictly after the
  // channel's previous step / extension). Pushing the same args again is a
  // no-op: the step simply continues.
  Status PushStep(PredicateId pred, Tuple args, const Rational& t) override;
  using EngineSession::PushStep;

  // Extends all open step channels through `t`, raises the watermark to `t`
  // and derives every consequence in the new band. With `horizon` set, then
  // slides the window minimum up to t - *horizon. Per-operation engine
  // stats (this event's work only) land in `stats` when given.
  Status Advance(const Rational& t, EngineStats* stats = nullptr) override;

  // Slides the window minimum up to `new_min` (window_min < new_min <=
  // watermark): expired coverage is retracted, its consequences un-derived,
  // provenance pruned, and the boundary region re-derived.
  Status Slide(const Rational& new_min, EngineStats* stats = nullptr) override;

  // Checkpoints the session at the current round barrier; refused after a
  // failed operation until the next operation heals the store.
  Result<SessionSnapshot> Snapshot() const override;

  // Thin compatibility aliases for the pre-facade vocabulary (one PR).
  Status AdvanceTo(const Rational& t, EngineStats* stats = nullptr) {
    return Advance(t, stats);
  }
  Status SlideTo(const Rational& new_min, EngineStats* stats = nullptr) {
    return Slide(new_min, stats);
  }

  // Runs a cold batch materialization over input_log() in a fresh database
  // - the byte-identity oracle for the current checkpoint.
  Result<ReplayResult> ColdReplay() const;

  const Database& db() const override { return db_; }
  const std::vector<DerivationRecord>& provenance() const override {
    return provenance_;
  }
  const Rational& watermark() const override;
  const Rational& window_min() const override;
  // The logged inputs, clamped by past slides (step channels appear as
  // their logged pieces).
  const std::vector<Fact>& input_log() const override;
  // False when the resolved options selected the batch (cold-replay) shape.
  bool streaming_enabled() const { return streaming_; }

 private:
  StreamingSession();

  struct Channel {
    Tuple args;
    Rational logged_hi;  // time through which coverage has been logged
  };

  static Result<std::unique_ptr<StreamingSession>> Build(
      const Program& program, const SessionOptions& options,
      const SessionSnapshot* snapshot);

  Status PushFact(const Fact& fact);
  Status ExtendChannels(const Rational& t);
  Status RebuildBatch(EngineStats* stats);  // batch path
  bool needs_rebuild() const {
    return streaming_ && inc_->needs_rebuild();
  }

  Program program_;
  SessionOptions options_;
  Database db_;
  std::vector<DerivationRecord> provenance_;
  std::unique_ptr<IncrementalMaterializer> inc_;
  bool streaming_ = true;

  // Ordered so channel extensions log in a deterministic order.
  std::map<PredicateId, Channel> channels_;

  // Batch-mode state (streaming_ == false); the incremental engine owns
  // the equivalents otherwise.
  std::vector<Fact> log_;
  Rational window_min_;
  Rational watermark_;
  bool advanced_any_ = false;
};

}  // namespace dmtl

#endif  // DMTL_STREAMING_SESSION_H_
