#ifndef DMTL_STREAMING_SESSION_H_
#define DMTL_STREAMING_SESSION_H_

#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "src/ast/program.h"
#include "src/common/status.h"
#include "src/eval/incremental.h"
#include "src/eval/seminaive.h"
#include "src/storage/database.h"

namespace dmtl {

// Configuration for a StreamingSession.
struct StreamingOptions {
  // Engine knobs (threads, memos, chain acceleration, budgets...).
  // min_time / max_time / provenance are managed by the session and must be
  // left unset.
  EngineOptions engine;

  // Initial window minimum and watermark: the session derives nothing below
  // this time, and the first AdvanceTo must not precede it.
  Rational start_time;

  // Sliding-window length. When set, AdvanceTo(t) automatically slides the
  // window minimum up to t - *horizon, retracting expired coverage. When
  // unset, the window only moves via explicit SlideTo calls.
  std::optional<Rational> horizon;

  // Record DerivationRecord provenance (required for Explain and for the
  // checkpoint provenance-coverage checks; retraction prunes it).
  bool track_provenance = true;
};

// A cold batch run over a session's current inputs - the oracle the
// streaming tests compare against, byte for byte.
struct ReplayResult {
  Database db;
  std::vector<DerivationRecord> provenance;
  EngineStats stats;
};

// A live, long-lived materialization session: chain events arrive one at a
// time through Push / PushStep, AdvanceTo(t) raises the watermark and
// incrementally derives the new consequences, and SlideTo (or the horizon
// option) expires old coverage out the back of the window.
//
// Invariant (checked by the streaming tests at every checkpoint): after any
// sequence of operations, db() is byte-identical to ColdReplay().db - one
// batch Materialize over input_log() with min_time = window_min() and
// max_time = watermark().
//
// Step channels. Chain feeds like the price oracle are step functions: the
// pushed value holds until the next update, whose time is unknown when the
// value arrives. PushStep models that without violating watermark finality:
// the session keeps one open channel per predicate and logs the step's
// coverage lazily - a point at the step time, an extension piece up to each
// watermark the channel lives through, and a closing piece when the next
// step arrives. The logged pieces union to exactly the ClosedOpen step
// intervals a batch loader would write.
//
// When the environment variable DMTL_DISABLE_STREAMING is set, the session
// keeps the identical external contract but re-runs a cold batch
// materialization per operation instead of using the incremental engine -
// the equivalence lane for CI.
class StreamingSession {
 public:
  // Validates the program for streaming eligibility (see
  // IncrementalMaterializer::Create) and builds the persistent engine
  // state. Eligibility is enforced even under DMTL_DISABLE_STREAMING so
  // both lanes accept the same programs.
  static Result<std::unique_ptr<StreamingSession>> Create(
      const Program& program, const StreamingOptions& options);

  ~StreamingSession();

  StreamingSession(const StreamingSession&) = delete;
  StreamingSession& operator=(const StreamingSession&) = delete;

  // Logs and inserts one input fact. After the first AdvanceTo, the fact's
  // interval must lie strictly above the watermark.
  Status Push(const Fact& fact);

  // Steps the predicate's channel to `args` at time `t` (strictly after the
  // channel's previous step / extension). Pushing the same args again is a
  // no-op: the step simply continues.
  Status PushStep(PredicateId pred, Tuple args, const Rational& t);
  Status PushStep(std::string_view pred, Tuple args, const Rational& t);

  // Extends all open step channels through `t`, raises the watermark to `t`
  // and derives every consequence in the new band. With `horizon` set, then
  // slides the window minimum up to t - *horizon. Per-operation engine
  // stats (this event's work only) land in `stats` when given.
  Status AdvanceTo(const Rational& t, EngineStats* stats = nullptr);

  // Slides the window minimum up to `new_min` (window_min < new_min <=
  // watermark): expired coverage is retracted, its consequences un-derived,
  // provenance pruned, and the boundary region re-derived.
  Status SlideTo(const Rational& new_min, EngineStats* stats = nullptr);

  // Runs a cold batch materialization over input_log() in a fresh database
  // - the byte-identity oracle for the current checkpoint.
  Result<ReplayResult> ColdReplay() const;

  const Database& db() const { return db_; }
  const std::vector<DerivationRecord>& provenance() const {
    return provenance_;
  }
  const Rational& watermark() const;
  const Rational& window_min() const;
  // The logged inputs, clamped by past slides (step channels appear as
  // their logged pieces).
  const std::vector<Fact>& input_log() const;
  // False when DMTL_DISABLE_STREAMING forced the cold-replay fallback.
  bool streaming_enabled() const { return streaming_; }

 private:
  StreamingSession();

  struct Channel {
    Tuple args;
    Rational logged_hi;  // time through which coverage has been logged
  };

  Status PushFact(const Fact& fact);
  Status ExtendChannels(const Rational& t);
  Status RebuildBatch(EngineStats* stats);  // fallback path

  Program program_;
  StreamingOptions options_;
  Database db_;
  std::vector<DerivationRecord> provenance_;
  std::unique_ptr<IncrementalMaterializer> inc_;
  bool streaming_ = true;

  // Ordered so channel extensions log in a deterministic order.
  std::map<PredicateId, Channel> channels_;

  // Fallback-mode state (streaming_ == false); the incremental engine owns
  // the equivalents otherwise.
  std::vector<Fact> log_;
  Rational window_min_;
  Rational watermark_;
  bool advanced_any_ = false;
};

}  // namespace dmtl

#endif  // DMTL_STREAMING_SESSION_H_
