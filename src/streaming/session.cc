#include "src/streaming/session.h"

#include <cstdlib>
#include <utility>

namespace dmtl {

StreamingSession::StreamingSession() = default;
StreamingSession::~StreamingSession() = default;

Result<std::unique_ptr<StreamingSession>> StreamingSession::Create(
    const Program& program, const StreamingOptions& options) {
  if (options.engine.min_time.has_value() ||
      options.engine.max_time.has_value()) {
    return Status::InvalidArgument(
        "engine min_time/max_time are managed by the session; use "
        "start_time and the watermark");
  }
  if (options.engine.provenance != nullptr) {
    return Status::InvalidArgument(
        "provenance storage is owned by the session; use track_provenance");
  }
  if (options.horizon.has_value() && !(Rational(0) < *options.horizon)) {
    return Status::InvalidArgument("horizon must be positive");
  }
  std::unique_ptr<StreamingSession> out(new StreamingSession());
  out->program_ = program;
  out->options_ = options;
  out->window_min_ = options.start_time;
  out->watermark_ = options.start_time;
  out->streaming_ = std::getenv("DMTL_DISABLE_STREAMING") == nullptr;

  EngineOptions engine = options.engine;
  engine.min_time = options.start_time;
  engine.provenance =
      options.track_provenance ? &out->provenance_ : nullptr;
  // Built in both modes: eligibility (past-directed operators, no head ops,
  // no since/until...) must not depend on the fallback lane.
  DMTL_ASSIGN_OR_RETURN(
      auto inc, IncrementalMaterializer::Create(program, &out->db_, engine));
  if (out->streaming_) out->inc_ = std::move(inc);
  return out;
}

Status StreamingSession::PushFact(const Fact& fact) {
  if (streaming_) return inc_->Push(fact);
  if (advanced_any_) {
    const Bound& lo = fact.interval.lo();
    const bool above =
        !lo.infinite &&
        (watermark_ < lo.value || (lo.value == watermark_ && lo.open));
    if (!above) {
      return Status::InvalidArgument(
          "streamed fact " + fact.ToString() +
          " reaches at or below the watermark " + watermark_.ToString() +
          "; push every fact at time t before advancing to t");
    }
  }
  log_.push_back(fact);
  return Status::Ok();
}

Status StreamingSession::Push(const Fact& fact) { return PushFact(fact); }

Status StreamingSession::PushStep(PredicateId pred, Tuple args,
                                  const Rational& t) {
  auto it = channels_.find(pred);
  if (it != channels_.end()) {
    Channel& ch = it->second;
    if (!(ch.logged_hi < t)) {
      return Status::InvalidArgument(
          "step channel " + std::string(PredicateName(pred)) +
          " already logged through " + ch.logged_hi.ToString() +
          "; steps must advance in time");
    }
    if (ch.args == args) return Status::Ok();  // same value: step continues
    // Close the outgoing step: its coverage past the last logged piece is
    // (logged_hi, t) - open at t, where the new value takes over.
    auto closing =
        Interval::Make(Bound::Open(ch.logged_hi), Bound::Open(t));
    if (closing.has_value()) {
      DMTL_RETURN_IF_ERROR(PushFact(Fact{pred, ch.args, *closing}));
    }
  }
  DMTL_RETURN_IF_ERROR(PushFact(Fact{pred, args, Interval::Point(t)}));
  channels_[pred] = Channel{std::move(args), t};
  return Status::Ok();
}

Status StreamingSession::PushStep(std::string_view pred, Tuple args,
                                  const Rational& t) {
  return PushStep(InternPredicate(pred), std::move(args), t);
}

Status StreamingSession::ExtendChannels(const Rational& t) {
  for (auto& [pred, ch] : channels_) {
    if (!(ch.logged_hi < t)) continue;
    auto piece = Interval::Make(Bound::Open(ch.logged_hi), Bound::Closed(t));
    DMTL_RETURN_IF_ERROR(PushFact(Fact{pred, ch.args, *piece}));
    ch.logged_hi = t;
  }
  return Status::Ok();
}

Status StreamingSession::AdvanceTo(const Rational& t, EngineStats* stats) {
  if (t < watermark()) {
    return Status::InvalidArgument("advance to " + t.ToString() +
                                   " precedes the watermark " +
                                   watermark().ToString());
  }
  DMTL_RETURN_IF_ERROR(ExtendChannels(t));
  if (streaming_) {
    DMTL_RETURN_IF_ERROR(inc_->Advance(t, stats));
  } else {
    watermark_ = t;
    advanced_any_ = true;
    DMTL_RETURN_IF_ERROR(RebuildBatch(stats));
  }
  if (options_.horizon.has_value()) {
    Rational new_min = t - *options_.horizon;
    if (window_min() < new_min) {
      DMTL_RETURN_IF_ERROR(SlideTo(new_min));
    }
  }
  return Status::Ok();
}

Status StreamingSession::SlideTo(const Rational& new_min,
                                 EngineStats* stats) {
  if (streaming_) return inc_->Retract(new_min, stats);
  if (!(window_min_ < new_min)) {
    return Status::InvalidArgument("window minimum must increase (" +
                                   window_min_.ToString() + " -> " +
                                   new_min.ToString() + ")");
  }
  if (watermark_ < new_min) {
    return Status::InvalidArgument(
        "cannot slide the window past the watermark " +
        watermark_.ToString());
  }
  std::vector<Fact> kept;
  kept.reserve(log_.size());
  for (const Fact& f : log_) {
    auto part = f.interval.Intersect(Interval::AtLeast(new_min));
    if (!part.has_value()) continue;
    Fact clamped = f;
    clamped.interval = *part;
    kept.push_back(std::move(clamped));
  }
  log_ = std::move(kept);
  window_min_ = new_min;
  return RebuildBatch(stats);
}

Status StreamingSession::RebuildBatch(EngineStats* stats) {
  db_.Clear();
  provenance_.clear();
  for (const Fact& f : log_) {
    db_.InsertSet(f.predicate, f.args, IntervalSet(f.interval));
  }
  EngineOptions o = options_.engine;
  o.min_time = window_min_;
  o.max_time = watermark_;
  o.provenance = options_.track_provenance ? &provenance_ : nullptr;
  EngineStats local;
  return Materialize(program_, &db_, o, stats != nullptr ? stats : &local);
}

Result<ReplayResult> StreamingSession::ColdReplay() const {
  ReplayResult out;
  for (const Fact& f : input_log()) {
    out.db.InsertSet(f.predicate, f.args, IntervalSet(f.interval));
  }
  EngineOptions o = options_.engine;
  o.min_time = window_min();
  o.max_time = watermark();
  o.provenance = options_.track_provenance ? &out.provenance : nullptr;
  DMTL_RETURN_IF_ERROR(Materialize(program_, &out.db, o, &out.stats));
  return out;
}

const Rational& StreamingSession::watermark() const {
  return streaming_ ? inc_->watermark() : watermark_;
}

const Rational& StreamingSession::window_min() const {
  return streaming_ ? inc_->window_min() : window_min_;
}

const std::vector<Fact>& StreamingSession::input_log() const {
  return streaming_ ? inc_->input_log() : log_;
}

}  // namespace dmtl
