#include "src/streaming/session.h"

#include <utility>

#include "src/parser/parser.h"
#include "src/storage/serialize.h"

namespace dmtl {

StreamingSession::StreamingSession() = default;
StreamingSession::~StreamingSession() = default;

Result<std::unique_ptr<StreamingSession>> StreamingSession::Build(
    const Program& program, const SessionOptions& options,
    const SessionSnapshot* snapshot) {
  if (options.engine.min_time.has_value() ||
      options.engine.max_time.has_value()) {
    return Status::InvalidArgument(
        "engine min_time/max_time are managed by the session; use "
        "start_time and the watermark");
  }
  if (options.engine.provenance != nullptr) {
    return Status::InvalidArgument(
        "provenance storage is owned by the session; use track_provenance");
  }
  if (options.horizon.has_value() && !(Rational(0) < *options.horizon)) {
    return Status::InvalidArgument("horizon must be positive");
  }
  std::unique_ptr<StreamingSession> out(new StreamingSession());
  out->program_ = program;
  out->options_ = options;
  // The one env override point: DMTL_DISABLE_STREAMING folds into the
  // resolved options here, selecting the batch (cold-replay) shape.
  out->streaming_ = options.engine.WithEnvOverrides().enable_streaming;

  if (snapshot != nullptr) {
    if (snapshot->program_fingerprint != ProgramFingerprint(program)) {
      return Status::InvalidArgument(
          "snapshot was taken against a different program (fingerprint "
          "mismatch); restoring it would silently diverge");
    }
    // Window position, horizon, and provenance tracking come from the
    // checkpoint - they are session state, not tuning. Engine knobs stay
    // the caller's, so a restore may run degraded (fewer threads, no
    // acceleration) and still be byte-identical.
    out->options_.start_time = snapshot->window_min;
    out->options_.horizon = snapshot->horizon;
    out->options_.track_provenance = snapshot->track_provenance;
    out->window_min_ = snapshot->window_min;
    out->watermark_ = snapshot->watermark;
    out->advanced_any_ = snapshot->advanced;
    out->provenance_ = snapshot->provenance;
    out->log_ = snapshot->input_log;
    for (const SessionSnapshot::Channel& ch : snapshot->channels) {
      out->channels_[ch.predicate] = Channel{ch.args, ch.logged_hi};
    }
    DMTL_ASSIGN_OR_RETURN(out->db_,
                          Parser::ParseDatabase(snapshot->database_text));
  } else {
    out->window_min_ = options.start_time;
    out->watermark_ = options.start_time;
  }

  EngineOptions engine = out->options_.engine;
  engine.min_time = out->options_.start_time;
  engine.provenance =
      out->options_.track_provenance ? &out->provenance_ : nullptr;
  if (snapshot == nullptr) {
    // Built in both modes: eligibility (past-directed operators, no head
    // ops, no since/until...) must not depend on the batch lane.
    DMTL_ASSIGN_OR_RETURN(auto inc, IncrementalMaterializer::Create(
                                        program, &out->db_, engine));
    if (out->streaming_) out->inc_ = std::move(inc);
  } else if (out->streaming_) {
    DMTL_ASSIGN_OR_RETURN(
        out->inc_,
        IncrementalMaterializer::Restore(program, &out->db_, engine,
                                         snapshot->input_log,
                                         snapshot->watermark,
                                         snapshot->advanced));
  } else {
    // Batch restore still validates streaming eligibility, against a
    // scratch database (Create requires an empty one).
    Database scratch;
    EngineOptions check = engine;
    check.provenance = nullptr;
    DMTL_RETURN_IF_ERROR(
        IncrementalMaterializer::Create(program, &scratch, check).status());
  }
  return out;
}

Result<std::unique_ptr<StreamingSession>> StreamingSession::Create(
    const Program& program, const SessionOptions& options) {
  return Build(program, options, nullptr);
}

Result<std::unique_ptr<StreamingSession>> StreamingSession::Restore(
    const Program& program, const SessionOptions& options,
    const SessionSnapshot& snapshot) {
  return Build(program, options, &snapshot);
}

Status StreamingSession::PushFact(const Fact& fact) {
  if (streaming_) return inc_->Push(fact);
  if (advanced_any_) {
    const Bound& lo = fact.interval.lo();
    const bool above =
        !lo.infinite &&
        (watermark_ < lo.value || (lo.value == watermark_ && lo.open));
    if (!above) {
      return Status::InvalidArgument(
          "streamed fact " + fact.ToString() +
          " reaches at or below the watermark " + watermark_.ToString() +
          "; push every fact at time t before advancing to t");
    }
  }
  log_.push_back(fact);
  return Status::Ok();
}

Status StreamingSession::Push(const Fact& fact) { return PushFact(fact); }

Status StreamingSession::PushStep(PredicateId pred, Tuple args,
                                  const Rational& t) {
  auto it = channels_.find(pred);
  if (it != channels_.end()) {
    Channel& ch = it->second;
    if (!(ch.logged_hi < t)) {
      return Status::InvalidArgument(
          "step channel " + std::string(PredicateName(pred)) +
          " already logged through " + ch.logged_hi.ToString() +
          "; steps must advance in time");
    }
    if (ch.args == args) return Status::Ok();  // same value: step continues
    // Close the outgoing step: its coverage past the last logged piece is
    // (logged_hi, t) - open at t, where the new value takes over.
    auto closing =
        Interval::Make(Bound::Open(ch.logged_hi), Bound::Open(t));
    if (closing.has_value()) {
      DMTL_RETURN_IF_ERROR(PushFact(Fact{pred, ch.args, *closing}));
    }
  }
  DMTL_RETURN_IF_ERROR(PushFact(Fact{pred, args, Interval::Point(t)}));
  channels_[pred] = Channel{std::move(args), t};
  return Status::Ok();
}

Status StreamingSession::ExtendChannels(const Rational& t) {
  for (auto& [pred, ch] : channels_) {
    if (!(ch.logged_hi < t)) continue;
    auto piece = Interval::Make(Bound::Open(ch.logged_hi), Bound::Closed(t));
    DMTL_RETURN_IF_ERROR(PushFact(Fact{pred, ch.args, *piece}));
    ch.logged_hi = t;
  }
  return Status::Ok();
}

Status StreamingSession::Advance(const Rational& t, EngineStats* stats) {
  if (t < watermark()) {
    return Status::InvalidArgument("advance to " + t.ToString() +
                                   " precedes the watermark " +
                                   watermark().ToString());
  }
  DMTL_RETURN_IF_ERROR(ExtendChannels(t));
  if (streaming_) {
    DMTL_RETURN_IF_ERROR(inc_->Advance(t, stats));
  } else {
    watermark_ = t;
    advanced_any_ = true;
    DMTL_RETURN_IF_ERROR(RebuildBatch(stats));
  }
  if (options_.horizon.has_value()) {
    Rational new_min = t - *options_.horizon;
    if (window_min() < new_min) {
      DMTL_RETURN_IF_ERROR(Slide(new_min));
    }
  }
  return Status::Ok();
}

Status StreamingSession::Slide(const Rational& new_min, EngineStats* stats) {
  if (streaming_) return inc_->Retract(new_min, stats);
  if (!(window_min_ < new_min)) {
    return Status::InvalidArgument("window minimum must increase (" +
                                   window_min_.ToString() + " -> " +
                                   new_min.ToString() + ")");
  }
  if (watermark_ < new_min) {
    return Status::InvalidArgument(
        "cannot slide the window past the watermark " +
        watermark_.ToString());
  }
  std::vector<Fact> kept;
  kept.reserve(log_.size());
  for (const Fact& f : log_) {
    auto part = f.interval.Intersect(Interval::AtLeast(new_min));
    if (!part.has_value()) continue;
    Fact clamped = f;
    clamped.interval = *part;
    kept.push_back(std::move(clamped));
  }
  log_ = std::move(kept);
  window_min_ = new_min;
  return RebuildBatch(stats);
}

Result<SessionSnapshot> StreamingSession::Snapshot() const {
  if (needs_rebuild()) {
    return Status::InvalidArgument(
        "snapshot refused: a failed operation left the database an "
        "under-approximation; the next operation heals it first");
  }
  SessionSnapshot snap;
  snap.program_fingerprint = ProgramFingerprint(program_);
  snap.watermark = watermark();
  snap.window_min = window_min();
  snap.horizon = options_.horizon;
  snap.advanced = streaming_ ? inc_->advanced() : advanced_any_;
  snap.track_provenance = options_.track_provenance;
  for (const auto& [pred, ch] : channels_) {
    snap.channels.push_back(
        SessionSnapshot::Channel{pred, ch.args, ch.logged_hi});
  }
  snap.input_log = input_log();
  snap.database_text = SerializeDatabase(db_);
  snap.provenance = provenance_;
  return snap;
}

Status StreamingSession::RebuildBatch(EngineStats* stats) {
  db_.Clear();
  provenance_.clear();
  for (const Fact& f : log_) {
    db_.InsertSet(f.predicate, f.args, IntervalSet(f.interval));
  }
  EngineOptions o = options_.engine;
  o.min_time = window_min_;
  o.max_time = watermark_;
  o.provenance = options_.track_provenance ? &provenance_ : nullptr;
  EngineStats local;
  return Materialize(program_, &db_, o, stats != nullptr ? stats : &local);
}

Result<ReplayResult> StreamingSession::ColdReplay() const {
  ReplayResult out;
  for (const Fact& f : input_log()) {
    out.db.InsertSet(f.predicate, f.args, IntervalSet(f.interval));
  }
  EngineOptions o = options_.engine;
  o.min_time = window_min();
  o.max_time = watermark();
  o.provenance = options_.track_provenance ? &out.provenance : nullptr;
  DMTL_RETURN_IF_ERROR(Materialize(program_, &out.db, o, &out.stats));
  return out;
}

const Rational& StreamingSession::watermark() const {
  return streaming_ ? inc_->watermark() : watermark_;
}

const Rational& StreamingSession::window_min() const {
  return streaming_ ? inc_->window_min() : window_min_;
}

const std::vector<Fact>& StreamingSession::input_log() const {
  return streaming_ ? inc_->input_log() : log_;
}

}  // namespace dmtl
