#include "src/tools/cli.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "src/analysis/dot_export.h"
#include "src/analysis/safety.h"
#include "src/analysis/stratifier.h"
#include "src/chain/workload.h"
#include "src/contracts/eth_perp_program.h"
#include "src/engine/reasoner.h"
#include "src/eval/chain_accel.h"
#include "src/eval/rule_eval.h"
#include "src/eval/vm.h"
#include "src/fleet/server.h"
#include "src/fleet/workload.h"
#include "src/storage/serialize.h"
#include "src/storage/snapshot.h"
#include "src/streaming/session.h"
#include "src/validation/parallel_sessions.h"

namespace dmtl {

namespace {

constexpr char kUsage[] =
    "usage: dmtl_cli <command> FILE... [options]\n"
    "\n"
    "commands:\n"
    "  run     materialize the program over the facts and print results\n"
    "  check   parse, check safety, stratify; print a report\n"
    "  dot     print the dependency graph as Graphviz DOT\n"
    "  fmt     parse and pretty-print rules and facts\n"
    "\n"
    "options for run:\n"
    "  --min T         derivation horizon lower bound (rational)\n"
    "  --max T         derivation horizon upper bound (rational)\n"
    "  --no-accel      disable chain acceleration\n"
    "  --naive         naive (non-semi-naive) evaluation\n"
    "  --no-plan       disable cost-based join planning\n"
    "  --no-deltas     disable interval-delta propagation (operator memos)\n"
    "  --no-compile    disable rule compilation (AST-walking evaluator)\n"
    "  --no-dense      disable the dense integer-timeline fast path\n"
    "  --no-arena      disable round-arena allocation\n"
    "  --dump-bytecode print each compiled rule's bytecode program after\n"
    "                  the run (declined rules report their reason)\n"
    "  --deadline-ms N wall-clock budget for materialization; on a trip the\n"
    "                  run exits with code 3 and prints stop diagnostics\n"
    "  --explain-plan  print each rule's join order, probed index\n"
    "                  signatures, and planner counters after the run\n"
    "  --threads N     evaluation threads (0 = hardware, default 1)\n"
    "  --query PRED    print only facts of PRED\n"
    "  --at TIME       print only tuples holding at TIME\n"
    "  --stats         print engine statistics\n"
    "  --output FILE   write the materialized database to FILE\n"
    "  --explain FACT  run with provenance and print the rule applications\n"
    "                  deriving FACT, e.g. --explain 'margin(acc, 100.0)@5 .'\n"
    "\n"
    "streaming (run only):\n"
    "  --stream FILE   live-session mode: facts in the program files seed\n"
    "                  the input log, then FILE's events drive a\n"
    "                  StreamingSession. One NDJSON line per event on\n"
    "                  stdout: {event, op, t, delta_intervals, latency_us}.\n"
    "                  FILE lines: fact syntax pushes facts;\n"
    "                  '@step <fact>@T .' steps a channel;\n"
    "                  '@advance T' raises the watermark; '@slide T' moves\n"
    "                  the window minimum; '@checkpoint' verifies the\n"
    "                  database against a cold replay (mismatch exits 1);\n"
    "                  '@snapshot FILE' checkpoints the session to FILE.\n"
    "                  --min sets the session start; --max is rejected.\n"
    "                  --stats adds per-event engine counters; --output\n"
    "                  writes the final database.\n"
    "  --restore FILE  start the stream session warm from a snapshot file\n"
    "                  written by '@snapshot' instead of fresh (the\n"
    "                  program files supply only rules; facts already live\n"
    "                  in the snapshot's input log)\n"
    "  --horizon T     sliding-window length: advances auto-slide the\n"
    "                  window minimum to watermark - T\n"
    "\n"
    "fleet (run only, takes no FILE arguments):\n"
    "  --fleet N       host N account-sharded ETH-PERP trading sessions on\n"
    "                  the in-process fleet server (work-stealing scheduler,\n"
    "                  per-session admission control, snapshot warm\n"
    "                  restarts). Prints one NDJSON line per session plus an\n"
    "                  aggregate line. --threads sets scheduler workers;\n"
    "                  --deadline-ms becomes the per-operation session\n"
    "                  deadline; --horizon gives every session a sliding\n"
    "                  window.\n";

struct CliOptions {
  std::string command;
  std::vector<std::string> files;
  EngineOptions engine;
  std::optional<std::string> query;
  std::optional<Rational> at;
  bool stats = false;
  std::optional<std::string> output;
  std::optional<std::string> explain;
  bool explain_plan = false;
  bool dump_bytecode = false;
  std::optional<std::string> stream;
  std::optional<std::string> restore;
  std::optional<Rational> horizon;
  int fleet = 0;
};

Result<CliOptions> ParseArgs(const std::vector<std::string>& args) {
  if (args.empty()) return Status::InvalidArgument("missing command");
  CliOptions options;
  options.command = args[0];
  if (options.command != "run" && options.command != "check" &&
      options.command != "dot" && options.command != "fmt") {
    return Status::InvalidArgument("unknown command '" + options.command +
                                   "'");
  }
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument(arg + " needs an argument");
      }
      return args[++i];
    };
    if (arg == "--min" || arg == "--max" || arg == "--at") {
      DMTL_ASSIGN_OR_RETURN(std::string text, next());
      DMTL_ASSIGN_OR_RETURN(Rational value, Rational::FromString(text));
      if (arg == "--min") {
        options.engine.min_time = value;
      } else if (arg == "--max") {
        options.engine.max_time = value;
      } else {
        options.at = value;
      }
    } else if (arg == "--no-accel") {
      options.engine.enable_chain_acceleration = false;
    } else if (arg == "--naive") {
      options.engine.naive_evaluation = true;
    } else if (arg == "--no-plan") {
      options.engine.enable_join_planning = false;
    } else if (arg == "--no-deltas") {
      options.engine.enable_interval_deltas = false;
    } else if (arg == "--no-compile") {
      options.engine.enable_rule_compile = false;
    } else if (arg == "--no-dense") {
      options.engine.enable_dense_timeline = false;
    } else if (arg == "--no-arena") {
      options.engine.enable_arena_alloc = false;
    } else if (arg == "--dump-bytecode") {
      options.dump_bytecode = true;
    } else if (arg == "--explain-plan") {
      options.explain_plan = true;
    } else if (arg == "--deadline-ms") {
      DMTL_ASSIGN_OR_RETURN(std::string text, next());
      char* end = nullptr;
      long value = std::strtol(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || value < 0) {
        return Status::InvalidArgument(
            "--deadline-ms needs a non-negative int, got '" + text + "'");
      }
      options.engine.deadline = std::chrono::milliseconds(value);
    } else if (arg == "--threads") {
      DMTL_ASSIGN_OR_RETURN(std::string text, next());
      char* end = nullptr;
      long value = std::strtol(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || value < 0) {
        return Status::InvalidArgument("--threads needs a non-negative int, got '" +
                                       text + "'");
      }
      options.engine.num_threads = static_cast<int>(value);
    } else if (arg == "--query") {
      DMTL_ASSIGN_OR_RETURN(std::string pred, next());
      options.query = pred;
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--output") {
      DMTL_ASSIGN_OR_RETURN(std::string path, next());
      options.output = path;
    } else if (arg == "--explain") {
      DMTL_ASSIGN_OR_RETURN(std::string fact, next());
      options.explain = fact;
    } else if (arg == "--stream") {
      DMTL_ASSIGN_OR_RETURN(std::string path, next());
      options.stream = path;
    } else if (arg == "--restore") {
      DMTL_ASSIGN_OR_RETURN(std::string path, next());
      options.restore = path;
    } else if (arg == "--fleet") {
      DMTL_ASSIGN_OR_RETURN(std::string text, next());
      char* end = nullptr;
      long value = std::strtol(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || value <= 0) {
        return Status::InvalidArgument("--fleet needs a positive int, got '" +
                                       text + "'");
      }
      options.fleet = static_cast<int>(value);
    } else if (arg == "--horizon") {
      DMTL_ASSIGN_OR_RETURN(std::string text, next());
      DMTL_ASSIGN_OR_RETURN(Rational value, Rational::FromString(text));
      options.horizon = value;
    } else if (!arg.empty() && arg[0] == '-') {
      return Status::InvalidArgument("unknown option '" + arg + "'");
    } else {
      options.files.push_back(arg);
    }
  }
  // Fleet mode generates its own workload against the built-in program, so
  // it is the one command shape that takes no input files.
  if (options.files.empty() && options.fleet == 0) {
    return Status::InvalidArgument("no input files");
  }
  return options;
}

// Prints each rule's chosen join plan against the materialized database
// (the plan a full non-delta pass would use now), then the run's planner
// counters. Comment-prefixed so the output stays a loadable program.
void PrintJoinPlans(const Program& program, const Database& db,
                    const EngineStats& stats, std::ostream& out) {
  out << "% join plans (over the materialized database):\n";
  const std::vector<Rule>& rules = program.rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    auto eval = RuleEvaluator::Create(rules[i], /*enable_join_planning=*/true);
    if (!eval.ok()) continue;
    out << "% rule " << i << ":\n";
    std::string plan = eval->ExplainPlan(db);
    size_t start = 0;
    while (start < plan.size()) {
      size_t end = plan.find('\n', start);
      if (end == std::string::npos) end = plan.size();
      out << "%   " << plan.substr(start, end - start) << "\n";
      start = end + 1;
    }
  }
  out << "% planner: " << stats.planner_indexes_built << " indexes built, "
      << stats.planner_index_probes << " probes ("
      << stats.planner_probe_hits << " hits), "
      << stats.planner_pruned_tuples << " tuples pruned\n";
}

// Prints each rule's compiled bytecode program against the materialized
// database (the variant a full non-delta pass would run now). Rules the
// compiler declines report the reason instead. Comment-prefixed so the
// output stays a loadable program.
Status PrintBytecode(const Program& program, const Database& db,
                     const EngineOptions& engine, std::ostream& out) {
  DMTL_ASSIGN_OR_RETURN(Stratification strat, Stratify(program));
  out << "% bytecode (over the materialized database):\n";
  const std::vector<Rule>& rules = program.rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    out << "% rule " << i << ": " << rules[i].ToString() << "\n";
    if (rules[i].head.aggregate.has_value()) {
      out << "%   declined: aggregate head (AggregateEvaluator)\n";
      continue;
    }
    DMTL_ASSIGN_OR_RETURN(
        RuleEvaluator eval,
        RuleEvaluator::Create(rules[i], engine.enable_join_planning));
    std::optional<ChainAccelerator::ChainInfo> chain;
    if (engine.enable_chain_acceleration) {
      chain = ChainAccelerator::Detect(rules[i], strat.predicate_stratum);
    }
    std::string why;
    std::unique_ptr<RuleVm> vm = RuleVm::Create(eval, chain, &why);
    if (vm == nullptr) {
      out << "%   declined: " << why << "\n";
      continue;
    }
    std::string text = vm->DumpBytecode(db);
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      out << "%   " << text.substr(start, end - start) << "\n";
      start = end + 1;
    }
  }
  return Status::Ok();
}

Result<Parser::ParsedUnit> LoadAll(const std::vector<std::string>& files) {
  Parser::ParsedUnit all;
  for (const std::string& path : files) {
    DMTL_ASSIGN_OR_RETURN(Parser::ParsedUnit unit, ReadSourceFile(path));
    for (const Rule& rule : unit.program.rules()) {
      all.program.AddRule(rule);
    }
    all.database.MergeFrom(unit.database);
  }
  return all;
}

// Live-session mode: one NDJSON line per stream event. Engine failures keep
// their batch exit-code classes (deadline 3, cancel 4, budget 5); a
// checkpoint mismatch is an internal error (exit 1).
Status CommandStream(const CliOptions& options, std::ostream& out,
                     std::ostream& err) {
  if (options.engine.max_time.has_value()) {
    return Status::InvalidArgument(
        "--max conflicts with --stream: the watermark manages the horizon");
  }
  DMTL_ASSIGN_OR_RETURN(Parser::ParsedUnit unit, LoadAll(options.files));
  std::ifstream in(*options.stream);
  if (!in) {
    return Status::InvalidArgument("cannot open stream file '" +
                                   *options.stream + "'");
  }

  SessionOptions sopts;
  sopts.engine = options.engine;
  sopts.engine.min_time.reset();
  sopts.start_time = options.engine.min_time.value_or(Rational(0));
  sopts.horizon = options.horizon;
  // The concrete StreamingSession (not the EngineSession facade) only for
  // ColdReplay, which backs the @checkpoint directive; everything else goes
  // through the unified Push/Advance/Slide/Snapshot surface.
  std::unique_ptr<StreamingSession> session;
  if (options.restore.has_value()) {
    if (options.engine.min_time.has_value()) {
      return Status::InvalidArgument(
          "--min conflicts with --restore: the snapshot fixes the window");
    }
    if (unit.database.NumIntervals() > 0) {
      return Status::InvalidArgument(
          "--restore takes rule-only program files: the facts already live "
          "in the snapshot's input log");
    }
    DMTL_ASSIGN_OR_RETURN(SessionSnapshot snap,
                          ReadSnapshotFile(*options.restore));
    DMTL_ASSIGN_OR_RETURN(
        session, StreamingSession::Restore(unit.program, sopts, snap));
  } else {
    DMTL_ASSIGN_OR_RETURN(session,
                          StreamingSession::Create(unit.program, sopts));
  }

  auto push_all = [&](const Database& facts) -> Status {
    for (const auto& [pred, rel] : facts.relations()) {
      for (const Relation::ScanEntry& row : rel.Rows()) {
        for (const Interval& iv : *row.extent) {
          DMTL_RETURN_IF_ERROR(session->Push(Fact{pred, *row.tuple, iv}));
        }
      }
    }
    return Status::Ok();
  };
  // Facts bundled with the program files seed the log pre-watermark.
  DMTL_RETURN_IF_ERROR(push_all(unit.database));

  size_t event_id = 0;
  size_t line_no = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    std::string_view text(line);
    text.remove_prefix(first);
    if (text[0] == '%' || text[0] == '#') continue;
    auto fail_here = [&](const Status& s) {
      return Status(s.code(), *options.stream + ":" +
                                  std::to_string(line_no) + ": " +
                                  s.message());
    };

    std::string op;
    size_t before = session->db().NumIntervals();
    EngineStats stats;
    bool have_stats = false;
    bool checkpoint_match = true;
    auto t0 = std::chrono::steady_clock::now();
    if (text.rfind("@advance", 0) == 0 || text.rfind("@slide", 0) == 0) {
      bool advance = text[1] == 'a';
      op = advance ? "advance" : "slide";
      std::string arg(text.substr(advance ? 8 : 6));
      DMTL_ASSIGN_OR_RETURN(Rational t, Rational::FromString(
                                            arg.substr(arg.find_first_not_of(
                                                " \t"))));
      Status step = advance ? session->Advance(t, &stats)
                            : session->Slide(t, &stats);
      have_stats = true;
      if (!step.ok()) {
        if (stats.stop_reason != StopReason::kCompleted) {
          err << "dmtl_cli: " << stats.StopDiagnostics() << "\n";
        }
        return fail_here(step);
      }
    } else if (text.rfind("@checkpoint", 0) == 0) {
      op = "checkpoint";
      DMTL_ASSIGN_OR_RETURN(ReplayResult cold, session->ColdReplay());
      checkpoint_match =
          SerializeDatabase(session->db()) == SerializeDatabase(cold.db);
    } else if (text.rfind("@snapshot", 0) == 0) {
      op = "snapshot";
      std::string path(text.substr(9));
      size_t lead = path.find_first_not_of(" \t");
      path = lead == std::string::npos ? std::string() : path.substr(lead);
      size_t trail = path.find_last_not_of(" \t\r");
      if (trail != std::string::npos) path = path.substr(0, trail + 1);
      if (path.empty()) {
        return fail_here(
            Status::InvalidArgument("@snapshot needs a file path"));
      }
      Result<SessionSnapshot> snap = session->Snapshot();
      if (!snap.ok()) return fail_here(snap.status());
      Status written = WriteSnapshotFile(snap.value(), path);
      if (!written.ok()) return fail_here(written);
    } else if (text.rfind("@step", 0) == 0) {
      op = "step";
      DMTL_ASSIGN_OR_RETURN(Database parsed,
                            Parser::ParseDatabase(std::string(text.substr(5))));
      for (const auto& [pred, rel] : parsed.relations()) {
        for (const Relation::ScanEntry& row : rel.Rows()) {
          for (const Interval& iv : *row.extent) {
            if (iv.lo().infinite || iv.hi().infinite ||
                !(iv.lo().value == iv.hi().value)) {
              return fail_here(Status::InvalidArgument(
                  "@step needs point-interval facts (value@T)"));
            }
            Status stepped =
                session->PushStep(pred, *row.tuple, iv.lo().value);
            if (!stepped.ok()) return fail_here(stepped);
          }
        }
      }
    } else if (text[0] == '@') {
      return fail_here(Status::InvalidArgument(
          "unknown stream directive '" + std::string(text) + "'"));
    } else {
      op = "push";
      DMTL_ASSIGN_OR_RETURN(Database parsed,
                            Parser::ParseDatabase(std::string(text)));
      Status pushed = push_all(parsed);
      if (!pushed.ok()) return fail_here(pushed);
    }
    double latency_us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    long long delta = static_cast<long long>(session->db().NumIntervals()) -
                      static_cast<long long>(before);
    out << "{\"event\":" << event_id++ << ",\"op\":\"" << op << "\""
        << ",\"watermark\":\"" << session->watermark().ToString() << "\""
        << ",\"window_min\":\"" << session->window_min().ToString() << "\""
        << ",\"delta_intervals\":" << delta << ",\"latency_us\":"
        << latency_us;
    if (op == "checkpoint") {
      out << ",\"match\":" << (checkpoint_match ? "true" : "false");
    }
    if (options.stats && have_stats) {
      out << ",\"rounds\":" << stats.rounds
          << ",\"rule_evaluations\":" << stats.rule_evaluations
          << ",\"memo_intersections\":" << stats.memo_intersections
          << ",\"vm_dispatches\":" << stats.vm_dispatches;
    }
    out << "}\n";
    if (!checkpoint_match) {
      return Status::Internal("checkpoint diverged from cold replay at " +
                              *options.stream + ":" +
                              std::to_string(line_no));
    }
  }
  if (options.output.has_value()) {
    DMTL_RETURN_IF_ERROR(WriteDatabaseFile(session->db(), *options.output));
  }
  return Status::Ok();
}

// Fleet mode: generate N account-sharded ETH-PERP sessions, host them all
// on an in-process FleetServer, drain, and print NDJSON - one line per
// session, then one aggregate line. Any failed session exits non-zero
// after the full report.
Status CommandFleet(const CliOptions& options, std::ostream& out,
                    std::ostream& err) {
  if (!options.files.empty()) {
    return Status::InvalidArgument(
        "--fleet generates its own workload; FILE arguments are not "
        "accepted");
  }
  if (options.stream.has_value()) {
    return Status::InvalidArgument("--fleet conflicts with --stream");
  }
  if (options.engine.min_time.has_value() ||
      options.engine.max_time.has_value()) {
    return Status::InvalidArgument(
        "--min/--max conflict with --fleet: every hosted session manages "
        "its own window");
  }
  DMTL_ASSIGN_OR_RETURN(Program program, EthPerpProgram());

  FleetOptions fopts;
  fopts.num_threads = options.engine.num_threads;
  fopts.engine = options.engine;
  // --deadline-ms is admission control here: a per-operation budget for
  // each hosted session, not one deadline for the whole drain.
  fopts.session_deadline = options.engine.deadline;
  fopts.engine.deadline.reset();
  DMTL_ASSIGN_OR_RETURN(std::unique_ptr<FleetServer> server,
                        FleetServer::Create(fopts));
  DMTL_RETURN_IF_ERROR(server->RegisterProgram("eth-perp", program));

  // Small per-session windows: the fleet's scale axis is session count.
  WorkloadConfig base;
  base.name = "fleet";
  base.duration_s = 600;
  base.num_events = 8;
  base.num_trades = 2;
  base.price.update_interval_s = 60;
  size_t total_ops = 0;
  for (const WorkloadConfig& config : ShardConfigs(base, options.fleet)) {
    DMTL_ASSIGN_OR_RETURN(Session session, GenerateSession(config));
    SessionKey key{"eth-perp", 0, config.name};
    DMTL_RETURN_IF_ERROR(
        server->Open(key, Rational(session.start_time), options.horizon));
    std::vector<FleetOp> ops = SessionToOps(session);
    total_ops += ops.size();
    DMTL_RETURN_IF_ERROR(server->Enqueue(key, std::move(ops)));
  }

  auto t0 = std::chrono::steady_clock::now();
  DMTL_ASSIGN_OR_RETURN(std::vector<SessionReport> reports, server->Drain());
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

  size_t failed = 0;
  size_t retried = 0;
  size_t advances = 0;
  size_t derived = 0;
  size_t snapshots = 0;
  std::vector<double> latencies;
  for (const SessionReport& r : reports) {
    out << "{\"session\":\"" << r.key.ToString() << "\""
        << ",\"ok\":" << (r.ok() ? "true" : "false")
        << ",\"ops\":" << r.ops_executed << ",\"advances\":" << r.advances
        << ",\"derived_intervals\":" << r.derived_intervals
        << ",\"snapshots\":" << r.snapshots_taken
        << ",\"retried\":" << (r.retried ? "true" : "false") << "}\n";
    if (!r.ok()) {
      ++failed;
      err << "dmtl_cli: " << r.key.ToString() << ": " << r.status.ToString()
          << "\n";
    }
    if (r.retried) ++retried;
    advances += r.advances;
    derived += r.derived_intervals;
    snapshots += r.snapshots_taken;
    latencies.insert(latencies.end(), r.advance_latencies_us.begin(),
                     r.advance_latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&](double p) -> double {
    if (latencies.empty()) return 0.0;
    size_t idx = static_cast<size_t>(p * (latencies.size() - 1));
    return latencies[idx];
  };
  out << "{\"fleet\":" << reports.size()
      << ",\"workers\":" << ThreadPool::ResolveThreads(fopts.num_threads)
      << ",\"failed\":" << failed << ",\"retried\":" << retried
      << ",\"ops\":" << total_ops << ",\"advances\":" << advances
      << ",\"derived_intervals\":" << derived
      << ",\"snapshots\":" << snapshots << ",\"wall_s\":" << wall_s
      << ",\"sessions_per_sec\":"
      << (wall_s > 0 ? static_cast<double>(reports.size()) / wall_s : 0.0)
      << ",\"advance_p50_us\":" << percentile(0.5)
      << ",\"advance_p99_us\":" << percentile(0.99) << "}\n";
  if (failed > 0) {
    return Status::Internal(std::to_string(failed) + " of " +
                            std::to_string(reports.size()) +
                            " fleet sessions failed");
  }
  return Status::Ok();
}

Status CommandRun(const CliOptions& options, std::ostream& out,
                  std::ostream& err) {
  if (options.fleet > 0) return CommandFleet(options, out, err);
  if (options.stream.has_value()) return CommandStream(options, out, err);
  DMTL_ASSIGN_OR_RETURN(Parser::ParsedUnit unit, LoadAll(options.files));
  Database db = std::move(unit.database);
  EngineStats stats;
  EngineOptions engine = options.engine;
  std::vector<DerivationRecord> provenance;
  if (options.explain.has_value()) engine.provenance = &provenance;
  Status run = Materialize(unit.program, &db, engine, &stats);
  if (!run.ok()) {
    // Guard trips and budget exhaustion come with where-it-stopped
    // diagnostics; surface them next to the error itself.
    if (stats.stop_reason != StopReason::kCompleted) {
      err << "dmtl_cli: " << stats.StopDiagnostics() << "\n";
    }
    return run;
  }
  if (options.explain.has_value()) {
    DMTL_ASSIGN_OR_RETURN(Database wanted,
                          Parser::ParseDatabase(*options.explain));
    for (const auto& [pred, rel] : wanted.relations()) {
      for (const auto& [tuple, set] : rel.data()) {
        for (const Interval& iv : set) {
          out << PredicateName(pred) << TupleToString(tuple) << "@"
              << iv.ToString() << ":\n";
          bool any = false;
          for (const DerivationRecord& record : provenance) {
            if (record.predicate != pred || record.tuple != tuple) continue;
            if (!record.piece.Intersect(iv).has_value()) continue;
            out << "  " << record.ToString(unit.program) << "\n";
            any = true;
          }
          if (!any) out << "  (no derivation: input fact or not entailed)\n";
        }
      }
    }
    return Status::Ok();
  }
  if (options.query.has_value()) {
    if (options.at.has_value()) {
      for (const Tuple& tuple :
           Reasoner::TuplesAt(db, *options.query, *options.at)) {
        out << *options.query << TupleToString(tuple) << "@"
            << options.at->ToString() << "\n";
      }
    } else {
      Database filtered;
      const Relation* rel = db.Find(*options.query);
      if (rel != nullptr) {
        PredicateId pred = InternPredicate(*options.query);
        for (const auto& [tuple, set] : rel->data()) {
          filtered.InsertSet(pred, tuple, set);
        }
      }
      out << SerializeDatabase(filtered);
    }
  } else if (options.at.has_value()) {
    // All predicates at one time point.
    std::vector<std::string> lines;
    for (const auto& [pred, rel] : db.relations()) {
      for (const auto& [tuple, set] : rel.data()) {
        if (set.Contains(*options.at)) {
          lines.push_back(PredicateName(pred) + TupleToString(tuple));
        }
      }
    }
    std::sort(lines.begin(), lines.end());
    for (const std::string& line : lines) out << line << "\n";
  } else {
    out << SerializeDatabase(db);
  }
  if (options.output.has_value()) {
    DMTL_RETURN_IF_ERROR(WriteDatabaseFile(db, *options.output));
  }
  if (options.explain_plan) {
    PrintJoinPlans(unit.program, db, stats, out);
  }
  if (options.dump_bytecode) {
    DMTL_RETURN_IF_ERROR(PrintBytecode(unit.program, db, options.engine, out));
  }
  if (options.stats) {
    out << "% " << stats.ToString() << "\n";
  }
  return Status::Ok();
}

Status CommandCheck(const CliOptions& options, std::ostream& out) {
  DMTL_ASSIGN_OR_RETURN(Parser::ParsedUnit unit, LoadAll(options.files));
  DMTL_RETURN_IF_ERROR(unit.program.CheckArities());
  DMTL_RETURN_IF_ERROR(CheckSafety(unit.program));
  DMTL_ASSIGN_OR_RETURN(Stratification strat, Stratify(unit.program));
  out << "OK: " << unit.program.size() << " rules, "
      << unit.database.NumIntervals() << " facts, " << strat.num_strata
      << " strata\n";
  for (int s = 0; s < strat.num_strata; ++s) {
    std::vector<std::string> names;
    for (const auto& [pred, stratum] : strat.predicate_stratum) {
      if (stratum == s) names.push_back(PredicateName(pred));
    }
    std::sort(names.begin(), names.end());
    out << "stratum " << s << ":";
    for (const std::string& name : names) out << " " << name;
    out << "\n";
  }
  return Status::Ok();
}

Status CommandDot(const CliOptions& options, std::ostream& out) {
  DMTL_ASSIGN_OR_RETURN(Parser::ParsedUnit unit, LoadAll(options.files));
  out << ToDot(DependencyGraph::Build(unit.program), "program");
  return Status::Ok();
}

Status CommandFmt(const CliOptions& options, std::ostream& out) {
  DMTL_ASSIGN_OR_RETURN(Parser::ParsedUnit unit, LoadAll(options.files));
  out << unit.program.ToString();
  out << SerializeDatabase(unit.database);
  return Status::Ok();
}

}  // namespace

Status RunCli(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  auto options = ParseArgs(args);
  if (!options.ok()) {
    err << kUsage;
    return options.status();
  }
  if (options->command == "run") return CommandRun(*options, out, err);
  if (options->command == "check") return CommandCheck(*options, out);
  if (options->command == "dot") return CommandDot(*options, out);
  return CommandFmt(*options, out);
}

int ExitCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kUnsafeRule:
    case StatusCode::kNotStratifiable:
      return 2;
    case StatusCode::kDeadlineExceeded:
      return 3;
    case StatusCode::kCancelled:
      return 4;
    case StatusCode::kResourceExhausted:
      return 5;
    default:
      return 1;
  }
}

int CliMain(int argc, const char* const* argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  Status status = RunCli(args, std::cout, std::cerr);
  if (!status.ok()) {
    std::cerr << "dmtl_cli: " << status.ToString() << "\n";
  }
  return ExitCodeForStatus(status);
}

}  // namespace dmtl
