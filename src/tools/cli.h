#ifndef DMTL_TOOLS_CLI_H_
#define DMTL_TOOLS_CLI_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace dmtl {

// The `dmtl_cli` command-line reasoner, factored as a library function so
// tests can drive it without spawning processes.
//
//   dmtl_cli run FILE...     [--min T] [--max T] [--no-accel] [--naive]
//                            [--query PRED] [--at TIME] [--stats]
//                            [--output FILE]
//   dmtl_cli check FILE...                  validate, stratify, report
//   dmtl_cli dot FILE...                    dependency graph as Graphviz
//   dmtl_cli fmt FILE...                    parse and pretty-print
//
// Input files may mix rules and facts. `run` materializes and prints the
// derived facts (all of them, or only --query PRED; --at restricts to one
// time point). --output writes the materialized database as parseable
// facts.
Status RunCli(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err);

// argv adapter used by the binary's main().
int CliMain(int argc, const char* const* argv);

}  // namespace dmtl

#endif  // DMTL_TOOLS_CLI_H_
