#ifndef DMTL_TOOLS_CLI_H_
#define DMTL_TOOLS_CLI_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace dmtl {

// The `dmtl_cli` command-line reasoner, factored as a library function so
// tests can drive it without spawning processes.
//
//   dmtl_cli run FILE...     [--min T] [--max T] [--no-accel] [--naive]
//                            [--query PRED] [--at TIME] [--stats]
//                            [--output FILE]
//   dmtl_cli check FILE...                  validate, stratify, report
//   dmtl_cli dot FILE...                    dependency graph as Graphviz
//   dmtl_cli fmt FILE...                    parse and pretty-print
//
// Input files may mix rules and facts. `run` materializes and prints the
// derived facts (all of them, or only --query PRED; --at restricts to one
// time point). --output writes the materialized database as parseable
// facts.
Status RunCli(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err);

// Process exit code for a RunCli outcome, so scripts can distinguish
// failure classes (see docs/robustness.md):
//   0  success
//   2  bad invocation or bad program (InvalidArgument, ParseError,
//      UnsafeRule, NotStratifiable)
//   3  deadline exceeded (--deadline-ms tripped)
//   4  cancelled
//   5  resource budget exhausted (max_intervals / max_rounds)
//   1  anything else (evaluation error, I/O, internal fault)
int ExitCodeForStatus(const Status& status);

// argv adapter used by the binary's main(); returns ExitCodeForStatus.
int CliMain(int argc, const char* const* argv);

}  // namespace dmtl

#endif  // DMTL_TOOLS_CLI_H_
