#include "src/ast/expr.h"

namespace dmtl {

Expr Expr::Const(Value v) {
  Expr e;
  e.op_ = Op::kConst;
  e.constant_ = std::move(v);
  return e;
}

Expr Expr::Var(int index) {
  Expr e;
  e.op_ = Op::kVar;
  e.var_ = index;
  return e;
}

Expr Expr::Unary(Op op, Expr child) {
  Expr e;
  e.op_ = op;
  e.children_.push_back(std::move(child));
  return e;
}

Expr Expr::Binary(Op op, Expr lhs, Expr rhs) {
  Expr e;
  e.op_ = op;
  e.children_.push_back(std::move(lhs));
  e.children_.push_back(std::move(rhs));
  return e;
}

void Expr::CollectVars(std::vector<int>* vars) const {
  if (op_ == Op::kVar) vars->push_back(var_);
  for (const Expr& c : children_) c.CollectVars(vars);
}

std::string Expr::ToString(const std::vector<std::string>& var_names) const {
  auto name = [&](int v) -> std::string {
    if (v >= 0 && static_cast<size_t>(v) < var_names.size()) {
      return var_names[v];
    }
    return "V" + std::to_string(v);
  };
  switch (op_) {
    case Op::kConst:
      return constant_.ToString();
    case Op::kVar:
      return name(var_);
    case Op::kAdd:
      return "(" + children_[0].ToString(var_names) + " + " +
             children_[1].ToString(var_names) + ")";
    case Op::kSub:
      return "(" + children_[0].ToString(var_names) + " - " +
             children_[1].ToString(var_names) + ")";
    case Op::kMul:
      return "(" + children_[0].ToString(var_names) + " * " +
             children_[1].ToString(var_names) + ")";
    case Op::kDiv:
      return "(" + children_[0].ToString(var_names) + " / " +
             children_[1].ToString(var_names) + ")";
    case Op::kNeg:
      return "(-" + children_[0].ToString(var_names) + ")";
    case Op::kAbs:
      return "abs(" + children_[0].ToString(var_names) + ")";
    case Op::kMin:
      return "min(" + children_[0].ToString(var_names) + ", " +
             children_[1].ToString(var_names) + ")";
    case Op::kMax:
      return "max(" + children_[0].ToString(var_names) + ", " +
             children_[1].ToString(var_names) + ")";
  }
  return "?";
}

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace dmtl
