#include "src/ast/atom.h"

namespace dmtl {

PredicateId InternPredicate(std::string_view name) {
  return Value::Symbol(name).symbol_id();
}

const std::string& PredicateName(PredicateId id) {
  return Value::SymbolFromId(id).AsSymbolName();
}

std::string RelationalAtom::ToString(
    const std::vector<std::string>& var_names) const {
  std::string out = PredicateName(predicate);
  out += '(';
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString(var_names);
  }
  out += ')';
  return out;
}

const char* MtlOpToString(MtlOp op) {
  switch (op) {
    case MtlOp::kDiamondMinus:
      return "diamondminus";
    case MtlOp::kBoxMinus:
      return "boxminus";
    case MtlOp::kDiamondPlus:
      return "diamondplus";
    case MtlOp::kBoxPlus:
      return "boxplus";
    case MtlOp::kSince:
      return "since";
    case MtlOp::kUntil:
      return "until";
  }
  return "?";
}

MetricAtom MetricAtom::Relational(RelationalAtom atom) {
  MetricAtom m;
  m.kind_ = Kind::kRelational;
  m.atom_ = std::move(atom);
  return m;
}

MetricAtom MetricAtom::Truth() {
  MetricAtom m;
  m.kind_ = Kind::kTruth;
  return m;
}

MetricAtom MetricAtom::Falsity() {
  MetricAtom m;
  m.kind_ = Kind::kFalsity;
  return m;
}

MetricAtom MetricAtom::Unary(MtlOp op, Interval range, MetricAtom child) {
  MetricAtom m;
  m.kind_ = Kind::kUnary;
  m.op_ = op;
  m.range_ = range;
  m.left_ = std::make_unique<MetricAtom>(std::move(child));
  return m;
}

MetricAtom MetricAtom::Binary(MtlOp op, Interval range, MetricAtom lhs,
                              MetricAtom rhs) {
  MetricAtom m;
  m.kind_ = Kind::kBinary;
  m.op_ = op;
  m.range_ = range;
  m.left_ = std::make_unique<MetricAtom>(std::move(lhs));
  m.right_ = std::make_unique<MetricAtom>(std::move(rhs));
  return m;
}

MetricAtom::MetricAtom(const MetricAtom& other)
    : kind_(other.kind_),
      atom_(other.atom_),
      op_(other.op_),
      range_(other.range_) {
  if (other.left_) left_ = std::make_unique<MetricAtom>(*other.left_);
  if (other.right_) right_ = std::make_unique<MetricAtom>(*other.right_);
}

MetricAtom& MetricAtom::operator=(const MetricAtom& other) {
  if (this == &other) return *this;
  kind_ = other.kind_;
  atom_ = other.atom_;
  op_ = other.op_;
  range_ = other.range_;
  left_ = other.left_ ? std::make_unique<MetricAtom>(*other.left_) : nullptr;
  right_ =
      other.right_ ? std::make_unique<MetricAtom>(*other.right_) : nullptr;
  return *this;
}

void MetricAtom::CollectRelationalAtoms(
    std::vector<const RelationalAtom*>* out) const {
  switch (kind_) {
    case Kind::kRelational:
      out->push_back(&atom_);
      return;
    case Kind::kTruth:
    case Kind::kFalsity:
      return;
    case Kind::kUnary:
      left_->CollectRelationalAtoms(out);
      return;
    case Kind::kBinary:
      left_->CollectRelationalAtoms(out);
      right_->CollectRelationalAtoms(out);
      return;
  }
}

void MetricAtom::CollectVars(std::vector<int>* vars) const {
  std::vector<const RelationalAtom*> atoms;
  CollectRelationalAtoms(&atoms);
  for (const RelationalAtom* a : atoms) {
    for (const Term& t : a->args) {
      if (t.is_variable()) vars->push_back(t.var());
    }
  }
}

std::string MetricAtom::ToString(
    const std::vector<std::string>& var_names) const {
  switch (kind_) {
    case Kind::kRelational:
      return atom_.ToString(var_names);
    case Kind::kTruth:
      return "top";
    case Kind::kFalsity:
      return "bottom";
    case Kind::kUnary:
      return std::string(MtlOpToString(op_)) + range_.ToString() + " " +
             left_->ToString(var_names);
    case Kind::kBinary:
      return "(" + left_->ToString(var_names) + " " + MtlOpToString(op_) +
             range_.ToString() + " " + right_->ToString(var_names) + ")";
  }
  return "?";
}

}  // namespace dmtl
