#ifndef DMTL_AST_ATOM_H_
#define DMTL_AST_ATOM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ast/term.h"
#include "src/temporal/interval.h"

namespace dmtl {

// Predicates are identified by their interned name; arity is validated to be
// consistent program-wide by the analysis pass.
using PredicateId = uint32_t;

PredicateId InternPredicate(std::string_view name);
const std::string& PredicateName(PredicateId id);

// P(t1, ..., tn).
struct RelationalAtom {
  PredicateId predicate = 0;
  std::vector<Term> args;

  std::string ToString(const std::vector<std::string>& var_names) const;
};

// Metric Temporal Logic operators over past/future windows.
enum class MtlOp : uint8_t {
  kDiamondMinus,  // <->[rho]  held at some point in the window in the past
  kBoxMinus,      // [-][rho]  held throughout the window in the past
  kDiamondPlus,   // <+>[rho]  will hold at some point in the future window
  kBoxPlus,       // [+][rho]  will hold throughout the future window
  kSince,         // M1 since[rho] M2
  kUntil,         // M1 until[rho] M2
};

const char* MtlOpToString(MtlOp op);

// A metric atom per the DatalogMTL grammar:
//   M ::= top | bottom | P(s) | <unary-op>[rho] M | M since[rho] M | ...
// Recursive; owns its children. Copyable (deep copy) so rules stay regular
// value types.
class MetricAtom {
 public:
  enum class Kind : uint8_t { kRelational, kTruth, kFalsity, kUnary, kBinary };

  MetricAtom() : kind_(Kind::kTruth) {}

  static MetricAtom Relational(RelationalAtom atom);
  static MetricAtom Truth();
  static MetricAtom Falsity();
  static MetricAtom Unary(MtlOp op, Interval range, MetricAtom child);
  static MetricAtom Binary(MtlOp op, Interval range, MetricAtom lhs,
                           MetricAtom rhs);

  MetricAtom(const MetricAtom& other);
  MetricAtom& operator=(const MetricAtom& other);
  MetricAtom(MetricAtom&&) = default;
  MetricAtom& operator=(MetricAtom&&) = default;

  Kind kind() const { return kind_; }
  const RelationalAtom& atom() const { return atom_; }
  RelationalAtom& mutable_atom() { return atom_; }
  MtlOp op() const { return op_; }
  const Interval& range() const { return range_; }
  const MetricAtom& left() const { return *left_; }
  const MetricAtom& right() const { return *right_; }

  // Appends every relational atom in the tree (both children of binaries).
  void CollectRelationalAtoms(std::vector<const RelationalAtom*>* out) const;
  // Appends every variable index in the tree.
  void CollectVars(std::vector<int>* vars) const;

  std::string ToString(const std::vector<std::string>& var_names) const;

 private:
  Kind kind_;
  RelationalAtom atom_;                      // kRelational
  MtlOp op_ = MtlOp::kDiamondMinus;          // kUnary / kBinary
  Interval range_ = Interval::Point(Rational(0));
  std::unique_ptr<MetricAtom> left_;         // kUnary child / kBinary lhs
  std::unique_ptr<MetricAtom> right_;        // kBinary rhs
};

}  // namespace dmtl

#endif  // DMTL_AST_ATOM_H_
