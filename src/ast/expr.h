#ifndef DMTL_AST_EXPR_H_
#define DMTL_AST_EXPR_H_

#include <string>
#include <vector>

#include "src/ast/value.h"

namespace dmtl {

// An arithmetic expression tree used in builtin body atoms: comparisons
// (K > 0), assignments (M = X + Y), and the contract's fee/funding formulas.
// Value semantics; children are stored inline.
class Expr {
 public:
  enum class Op : uint8_t {
    kConst,  // literal value
    kVar,    // rule variable
    kAdd,
    kSub,
    kMul,
    kDiv,
    kNeg,  // unary minus
    kAbs,
    kMin,
    kMax,
  };

  static Expr Const(Value v);
  static Expr Var(int index);
  static Expr Unary(Op op, Expr child);
  static Expr Binary(Op op, Expr lhs, Expr rhs);

  Op op() const { return op_; }
  const Value& constant() const { return constant_; }
  int var() const { return var_; }
  const std::vector<Expr>& children() const { return children_; }

  // Appends all variable indices occurring in the tree.
  void CollectVars(std::vector<int>* vars) const;

  std::string ToString(const std::vector<std::string>& var_names) const;

 private:
  Op op_ = Op::kConst;
  Value constant_;
  int var_ = -1;
  std::vector<Expr> children_;
};

// Comparison relations for builtin filter atoms.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpToString(CmpOp op);

}  // namespace dmtl

#endif  // DMTL_AST_EXPR_H_
