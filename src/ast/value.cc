#include "src/ast/value.h"

#include <cassert>
#include <cmath>
#include <deque>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace dmtl {

namespace {

// Process-wide symbol interner. Uses the function-local-static-reference
// pattern so it is never destroyed (safe at any shutdown order).
class SymbolTable {
 public:
  static SymbolTable& Get() {
    static SymbolTable& table = *new SymbolTable();
    return table;
  }

  uint32_t Intern(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(names_.size());
    names_.push_back(std::string(name));
    ids_.emplace(names_.back(), id);
    return id;
  }

  const std::string& Name(uint32_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    assert(id < names_.size());
    return names_[id];
  }

 private:
  std::mutex mu_;
  // Deque, not vector: Name() hands out references that must survive
  // concurrent Intern() growth (deque never relocates elements), so reader
  // threads can resolve names while another thread interns new symbols.
  std::deque<std::string> names_;
  std::unordered_map<std::string, uint32_t> ids_;
};

}  // namespace

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.kind_ = Kind::kInt;
  v.int_ = i;
  return v;
}

Value Value::Double(double d) {
  Value v;
  v.kind_ = Kind::kDouble;
  v.double_ = d;
  return v;
}

Value Value::Symbol(std::string_view name) {
  return SymbolFromId(SymbolTable::Get().Intern(name));
}

Value Value::SymbolFromId(uint32_t id) {
  Value v;
  v.kind_ = Kind::kSymbol;
  v.symbol_ = id;
  return v;
}

bool Value::AsBool() const {
  assert(is_bool());
  return bool_;
}

int64_t Value::AsInt() const {
  assert(is_int());
  return int_;
}

double Value::AsDouble() const {
  assert(is_numeric());
  return is_int() ? static_cast<double>(int_) : double_;
}

uint32_t Value::symbol_id() const {
  assert(is_symbol());
  return symbol_;
}

const std::string& Value::AsSymbolName() const {
  return SymbolTable::Get().Name(symbol_id());
}

int Value::NumericCompare(const Value& a, const Value& b) {
  assert(a.is_numeric() && b.is_numeric());
  if (a.is_int() && b.is_int()) {
    if (a.int_ < b.int_) return -1;
    if (b.int_ < a.int_) return 1;
    return 0;
  }
  double x = a.AsDouble();
  double y = b.AsDouble();
  if (x < y) return -1;
  if (y < x) return 1;
  return 0;
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kDouble: {
      std::ostringstream os;
      os.precision(17);
      os << double_;
      return os.str();
    }
    case Kind::kSymbol:
      return AsSymbolName();
  }
  return "?";
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Value::Kind::kNull:
      return true;
    case Value::Kind::kBool:
      return a.bool_ == b.bool_;
    case Value::Kind::kInt:
      return a.int_ == b.int_;
    case Value::Kind::kDouble:
      return a.double_ == b.double_;
    case Value::Kind::kSymbol:
      return a.symbol_ == b.symbol_;
  }
  return false;
}

bool operator<(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
  switch (a.kind_) {
    case Value::Kind::kNull:
      return false;
    case Value::Kind::kBool:
      return a.bool_ < b.bool_;
    case Value::Kind::kInt:
      return a.int_ < b.int_;
    case Value::Kind::kDouble:
      return a.double_ < b.double_;
    case Value::Kind::kSymbol:
      return a.AsSymbolName() < b.AsSymbolName();
  }
  return false;
}

size_t Value::Hash() const {
  size_t h = static_cast<size_t>(kind_);
  size_t payload = 0;
  switch (kind_) {
    case Kind::kNull:
      payload = 0;
      break;
    case Kind::kBool:
      payload = bool_ ? 1 : 0;
      break;
    case Kind::kInt:
      payload = std::hash<int64_t>()(int_);
      break;
    case Kind::kDouble:
      payload = std::hash<double>()(double_);
      break;
    case Kind::kSymbol:
      payload = symbol_;
      break;
  }
  return h * 0x9e3779b97f4a7c15ULL + payload;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

std::string TupleToString(const Tuple& tuple) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuple[i].ToString();
  }
  out += ')';
  return out;
}

size_t TupleHash::operator()(const Tuple& t) const {
  size_t h = t.size();
  for (const Value& v : t) {
    h = h * 0x100000001b3ULL ^ v.Hash();
  }
  return h;
}

}  // namespace dmtl
