#ifndef DMTL_AST_PROGRAM_H_
#define DMTL_AST_PROGRAM_H_

#include <set>
#include <string>
#include <vector>

#include "src/ast/rule.h"
#include "src/common/status.h"

namespace dmtl {

// A DatalogMTL program: a finite set of rules. Construction-time checks
// (arity consistency) live here; deeper analyses (safety, stratification)
// live in src/analysis.
class Program {
 public:
  Program() = default;

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

  const std::vector<Rule>& rules() const { return rules_; }
  size_t size() const { return rules_.size(); }

  // All predicates mentioned anywhere (heads and bodies).
  std::set<PredicateId> AllPredicates() const;

  // Predicates that appear in at least one rule head (the IDB).
  std::set<PredicateId> HeadPredicates() const;

  // Predicates that only ever appear in bodies (the EDB - expected to come
  // from the input database).
  std::set<PredicateId> EdbPredicates() const;

  // Verifies that every predicate is used with a single arity everywhere.
  Status CheckArities() const;

  std::string ToString() const;

 private:
  std::vector<Rule> rules_;
};

}  // namespace dmtl

#endif  // DMTL_AST_PROGRAM_H_
