#include "src/ast/rule.h"

namespace dmtl {

std::string BuiltinAtom::ToString(
    const std::vector<std::string>& var_names) const {
  auto name = [&](int v) -> std::string {
    if (v >= 0 && static_cast<size_t>(v) < var_names.size()) {
      return var_names[v];
    }
    return "V" + std::to_string(v);
  };
  switch (kind) {
    case Kind::kCompare:
      return lhs.ToString(var_names) + " " + CmpOpToString(cmp) + " " +
             rhs.ToString(var_names);
    case Kind::kAssign:
      return name(var) + " = " + expr.ToString(var_names);
    case Kind::kTimestamp:
      return "timestamp(" + name(var) + ")";
  }
  return "?";
}

BodyLiteral BodyLiteral::Metric(MetricAtom atom, bool negated) {
  BodyLiteral lit;
  lit.kind = Kind::kMetric;
  lit.negated = negated;
  lit.metric = std::move(atom);
  return lit;
}

BodyLiteral BodyLiteral::Builtin(BuiltinAtom atom) {
  BodyLiteral lit;
  lit.kind = Kind::kBuiltin;
  lit.builtin = std::move(atom);
  return lit;
}

std::string BodyLiteral::ToString(
    const std::vector<std::string>& var_names) const {
  if (kind == Kind::kBuiltin) return builtin.ToString(var_names);
  std::string out = negated ? "not " : "";
  return out + metric.ToString(var_names);
}

const char* AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
      return "msum";
    case AggKind::kCount:
      return "mcount";
    case AggKind::kMin:
      return "mmin";
    case AggKind::kMax:
      return "mmax";
    case AggKind::kAvg:
      return "mavg";
  }
  return "?";
}

std::string HeadAtom::ToString(
    const std::vector<std::string>& var_names) const {
  std::string out;
  for (const HeadOp& op : ops) {
    out += MtlOpToString(op.op);
    out += op.range.ToString();
    out += ' ';
  }
  out += PredicateName(predicate);
  out += '(';
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    if (aggregate.has_value() &&
        aggregate->arg_index == static_cast<int>(i)) {
      out += AggKindToString(aggregate->kind);
      out += '(';
      out += aggregate->term.ToString(var_names);
      out += ')';
    } else {
      out += args[i].ToString(var_names);
    }
  }
  out += ')';
  return out;
}

std::string Rule::ToString() const {
  std::string out = head.ToString(var_names);
  out += " :- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += body[i].ToString(var_names);
  }
  out += " .";
  return out;
}

}  // namespace dmtl
