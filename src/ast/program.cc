#include "src/ast/program.h"

#include <map>

namespace dmtl {

std::set<PredicateId> Program::AllPredicates() const {
  std::set<PredicateId> out = HeadPredicates();
  for (const Rule& rule : rules_) {
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kMetric) continue;
      std::vector<const RelationalAtom*> atoms;
      lit.metric.CollectRelationalAtoms(&atoms);
      for (const RelationalAtom* atom : atoms) out.insert(atom->predicate);
    }
  }
  return out;
}

std::set<PredicateId> Program::HeadPredicates() const {
  std::set<PredicateId> out;
  for (const Rule& rule : rules_) out.insert(rule.head.predicate);
  return out;
}

std::set<PredicateId> Program::EdbPredicates() const {
  std::set<PredicateId> all = AllPredicates();
  for (PredicateId head : HeadPredicates()) all.erase(head);
  return all;
}

Status Program::CheckArities() const {
  std::map<PredicateId, size_t> arities;
  auto check = [&](PredicateId pred, size_t arity) -> Status {
    auto [it, inserted] = arities.emplace(pred, arity);
    if (!inserted && it->second != arity) {
      return Status::InvalidArgument(
          "predicate '" + PredicateName(pred) + "' used with arities " +
          std::to_string(it->second) + " and " + std::to_string(arity));
    }
    return Status::Ok();
  };
  for (const Rule& rule : rules_) {
    DMTL_RETURN_IF_ERROR(check(rule.head.predicate, rule.head.args.size()));
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kMetric) continue;
      std::vector<const RelationalAtom*> atoms;
      lit.metric.CollectRelationalAtoms(&atoms);
      for (const RelationalAtom* atom : atoms) {
        DMTL_RETURN_IF_ERROR(check(atom->predicate, atom->args.size()));
      }
    }
  }
  return Status::Ok();
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& rule : rules_) {
    out += rule.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace dmtl
