#ifndef DMTL_AST_TERM_H_
#define DMTL_AST_TERM_H_

#include <string>
#include <vector>

#include "src/ast/value.h"

namespace dmtl {

// An argument position in an atom: a constant value or a rule-scoped
// variable (an index into the owning rule's variable table). Anonymous
// variables ("_") get a fresh index per occurrence at parse time.
class Term {
 public:
  static Term Constant(Value v) {
    Term t;
    t.is_var_ = false;
    t.value_ = std::move(v);
    return t;
  }

  static Term Variable(int index) {
    Term t;
    t.is_var_ = true;
    t.var_ = index;
    return t;
  }

  bool is_variable() const { return is_var_; }
  bool is_constant() const { return !is_var_; }

  int var() const { return var_; }
  const Value& value() const { return value_; }

  // Renders the term with variable names from the owning rule.
  std::string ToString(const std::vector<std::string>& var_names) const;

  friend bool operator==(const Term& a, const Term& b) {
    if (a.is_var_ != b.is_var_) return false;
    return a.is_var_ ? a.var_ == b.var_ : a.value_ == b.value_;
  }

 private:
  Term() : is_var_(false), var_(-1) {}

  bool is_var_;
  int var_;
  Value value_;
};

}  // namespace dmtl

#endif  // DMTL_AST_TERM_H_
