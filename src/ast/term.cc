#include "src/ast/term.h"

namespace dmtl {

std::string Term::ToString(const std::vector<std::string>& var_names) const {
  if (is_var_) {
    if (var_ >= 0 && static_cast<size_t>(var_) < var_names.size()) {
      return var_names[var_];
    }
    return "V" + std::to_string(var_);
  }
  if (value_.is_symbol()) return value_.AsSymbolName();
  return value_.ToString();
}

}  // namespace dmtl
