#ifndef DMTL_AST_RULE_H_
#define DMTL_AST_RULE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/ast/atom.h"
#include "src/ast/expr.h"

namespace dmtl {

// A non-relational body atom: a comparison filter, a variable assignment, or
// the `timestamp(T)` builtin (the paper's Vadalog `unix(t)` promotion, which
// binds T to the punctual time point of the join result).
struct BuiltinAtom {
  enum class Kind : uint8_t { kCompare, kAssign, kTimestamp };

  Kind kind = Kind::kCompare;
  // kCompare: lhs cmp rhs.
  CmpOp cmp = CmpOp::kEq;
  Expr lhs;
  Expr rhs;
  // kAssign: var := expr. kTimestamp: var := current time point.
  int var = -1;
  Expr expr;

  std::string ToString(const std::vector<std::string>& var_names) const;
};

// One conjunct of a rule body.
struct BodyLiteral {
  enum class Kind : uint8_t { kMetric, kBuiltin };

  Kind kind = Kind::kMetric;
  bool negated = false;  // only meaningful for kMetric
  MetricAtom metric;
  BuiltinAtom builtin;

  static BodyLiteral Metric(MetricAtom atom, bool negated = false);
  static BodyLiteral Builtin(BuiltinAtom atom);

  std::string ToString(const std::vector<std::string>& var_names) const;
};

// Aggregation functions available in rule heads (stratified semantics,
// grouped by the head's non-aggregated arguments and by time point).
enum class AggKind : uint8_t { kSum, kCount, kMin, kMax, kAvg };

const char* AggKindToString(AggKind kind);

struct AggregateSpec {
  AggKind kind = AggKind::kSum;
  // Which head argument position carries the aggregate.
  int arg_index = 0;
  // The aggregated term (a variable or constant from the body).
  Term term = Term::Constant(Value::Int(0));
};

// Rule head: an optional chain of boxminus/boxplus operators around a
// relational atom (per the DatalogMTL head grammar M' ::= P(s) | boxminus M'
// | boxplus M'), optionally with one aggregated argument.
struct HeadAtom {
  struct HeadOp {
    MtlOp op;  // kBoxMinus or kBoxPlus only
    Interval range;
  };

  std::vector<HeadOp> ops;  // outermost first
  PredicateId predicate = 0;
  std::vector<Term> args;
  std::optional<AggregateSpec> aggregate;

  std::string ToString(const std::vector<std::string>& var_names) const;
};

// A DatalogMTL rule: body literals -> head. Variables are rule-scoped
// indices into `var_names`.
struct Rule {
  HeadAtom head;
  std::vector<BodyLiteral> body;
  std::vector<std::string> var_names;
  // Optional label for diagnostics (e.g. "paper-rule-36-corrected").
  std::string label;

  int num_vars() const { return static_cast<int>(var_names.size()); }

  std::string ToString() const;
};

}  // namespace dmtl

#endif  // DMTL_AST_RULE_H_
