#ifndef DMTL_AST_VALUE_H_
#define DMTL_AST_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dmtl {

// A runtime constant in a fact or rule: null, boolean, 64-bit integer,
// double, or an interned symbol (identifiers like account ids and strings).
//
// Identity (operator==, Hash) is structural: Int(1) != Double(1.0). Numeric
// *comparison* for builtin predicates promotes int to double; see
// NumericCompare().
class Value {
 public:
  enum class Kind : uint8_t { kNull, kBool, kInt, kDouble, kSymbol };

  Value() : kind_(Kind::kNull), int_(0) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t i);
  static Value Double(double d);
  // Interns `name` in the process-wide symbol table.
  static Value Symbol(std::string_view name);
  static Value SymbolFromId(uint32_t id);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_symbol() const { return kind_ == Kind::kSymbol; }
  bool is_numeric() const { return is_int() || is_double(); }

  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;  // int promotes to double
  uint32_t symbol_id() const;
  // The interned spelling; only valid for symbols.
  const std::string& AsSymbolName() const;

  // Three-way numeric comparison with int->double promotion; both values
  // must be numeric (callers validate). Returns -1, 0, or 1.
  static int NumericCompare(const Value& a, const Value& b);

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  // Total order usable for sorting tuples deterministically.
  friend bool operator<(const Value& a, const Value& b);

  size_t Hash() const;

 private:
  Kind kind_;
  union {
    bool bool_;
    int64_t int_;
    double double_;
    uint32_t symbol_;
  };
};

std::ostream& operator<<(std::ostream& os, const Value& v);

// A ground argument list.
using Tuple = std::vector<Value>;

std::string TupleToString(const Tuple& tuple);

struct TupleHash {
  size_t operator()(const Tuple& t) const;
};

}  // namespace dmtl

template <>
struct std::hash<dmtl::Value> {
  size_t operator()(const dmtl::Value& v) const { return v.Hash(); }
};

#endif  // DMTL_AST_VALUE_H_
