#include "src/validation/parallel_sessions.h"

#include <utility>

#include "src/chain/replayer.h"
#include "src/common/thread_pool.h"
#include "src/contracts/eth_perp_program.h"

namespace dmtl {

size_t ParallelSessionsOptions::ResolvedThreads() const {
  return ThreadPool::ResolveThreads(num_threads);
}

std::vector<WorkloadConfig> ShardConfigs(const WorkloadConfig& base,
                                         int num_shards) {
  std::vector<WorkloadConfig> shards;
  if (num_shards <= 0) return shards;
  shards.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    WorkloadConfig config = base;
    config.name = base.name + "-shard" + std::to_string(i);
    // Disjoint seeds give every shard its own accounts and order flow; the
    // stride keeps neighboring shards' streams uncorrelated.
    config.seed = base.seed + static_cast<uint64_t>(i) * 0x9E3779B9u + 1;
    shards.push_back(std::move(config));
  }
  return shards;
}

Result<std::vector<SessionShardResult>> RunParallelSessions(
    const std::vector<WorkloadConfig>& shards,
    const ParallelSessionsOptions& options) {
  std::vector<SessionShardResult> results(shards.size());
  if (shards.empty()) return results;

  // The program text is identical across shards: parse it once and share
  // the compiled AST read-only with every task.
  DMTL_ASSIGN_OR_RETURN(Program program, EthPerpProgram(options.params));

  ThreadPool pool(options.ResolvedThreads());
  DMTL_RETURN_IF_ERROR(pool.ParallelFor(
      shards.size(), [&](size_t i) -> Status {
        SessionShardResult& out = results[i];
        DMTL_ASSIGN_OR_RETURN(out.session, GenerateSession(shards[i]));
        out.name = out.session.name;
        out.db = SessionToDatabase(out.session);
        EngineOptions engine = options.engine;
        EngineOptions horizon = SessionEngineOptions(out.session);
        engine.min_time = horizon.min_time;
        engine.max_time = horizon.max_time;
        // A caller-supplied provenance vector would be appended to from
        // every shard at once; shard-level provenance is not supported.
        engine.provenance = nullptr;
        return Materialize(program, &out.db, engine, &out.stats);
      }));
  return results;
}

}  // namespace dmtl
