#include "src/validation/parallel_sessions.h"

#include <string>
#include <utility>

#include "src/chain/replayer.h"
#include "src/common/fault_injector.h"
#include "src/common/thread_pool.h"
#include "src/contracts/eth_perp_program.h"

namespace dmtl {

namespace {

// One materialization attempt for a shard whose session is already
// generated: rebuild the database from the session and run the engine with
// the shard-local horizon.
Status MaterializeShard(const Program& program, const EngineOptions& base,
                        SessionShardResult* out) {
  out->db = SessionToDatabase(out->session);
  // RunParallelSessions already rejected caller-set min/max/provenance, so
  // installing the shard-local horizon here overrides nothing.
  EngineOptions engine = base;
  EngineOptions horizon = SessionEngineOptions(out->session);
  engine.min_time = horizon.min_time;
  engine.max_time = horizon.max_time;
  DMTL_RETURN_IF_ERROR(FaultInjector::Fire("parallel_sessions.shard"));
  return Materialize(program, &out->db, engine, &out->stats);
}

// The full per-shard pipeline: generate, materialize, optionally retry
// degraded. Never lets an exception escape - the shard's status is the
// only failure channel.
void RunShard(const Program& program, const WorkloadConfig& config,
              const ParallelSessionsOptions& options,
              SessionShardResult* out) {
  auto attempt = [&]() -> Status {
    try {
      if (out->session.events.empty()) {
        DMTL_ASSIGN_OR_RETURN(out->session, GenerateSession(config));
        out->name = out->session.name;
      }
      return MaterializeShard(program, options.engine, out);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("shard aborted by exception: ") +
                              e.what());
    } catch (...) {
      return Status::Internal("shard aborted by non-standard exception");
    }
  };

  out->status = attempt();
  if (out->status.ok() || !options.retry_failed_sessions) return;
  // Never retry a cancellation: the caller asked the run to stop.
  if (out->status.code() == StatusCode::kCancelled) return;
  if (out->session.events.empty()) return;  // generation failed; no input

  out->first_attempt_status = out->status;
  out->retried = true;
  ParallelSessionsOptions degraded = options;
  degraded.engine.num_threads = 1;
  degraded.engine.enable_chain_acceleration = false;
  out->stats = EngineStats();
  try {
    out->status = MaterializeShard(program, degraded.engine, out);
  } catch (const std::exception& e) {
    out->status = Status::Internal(
        std::string("shard retry aborted by exception: ") + e.what());
  } catch (...) {
    out->status = Status::Internal("shard retry aborted by exception");
  }
}

}  // namespace

size_t ParallelSessionsOptions::ResolvedThreads() const {
  return ThreadPool::ResolveThreads(num_threads);
}

std::vector<WorkloadConfig> ShardConfigs(const WorkloadConfig& base,
                                         int num_shards) {
  std::vector<WorkloadConfig> shards;
  if (num_shards <= 0) return shards;
  shards.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    WorkloadConfig config = base;
    config.name = base.name + "-shard" + std::to_string(i);
    // Disjoint seeds give every shard its own accounts and order flow; the
    // stride keeps neighboring shards' streams uncorrelated.
    config.seed = base.seed + static_cast<uint64_t>(i) * 0x9E3779B9u + 1;
    shards.push_back(std::move(config));
  }
  return shards;
}

Result<std::vector<SessionShardResult>> RunParallelSessions(
    const std::vector<WorkloadConfig>& shards,
    const ParallelSessionsOptions& options) {
  // These used to be silently overridden per shard; make the conflict loud
  // so a caller who expected a global window or provenance finds out.
  if (options.engine.min_time.has_value() ||
      options.engine.max_time.has_value()) {
    return Status::InvalidArgument(
        "ParallelSessionsOptions.engine min_time/max_time must be unset: "
        "every shard materializes over its own session window");
  }
  if (options.engine.provenance != nullptr) {
    return Status::InvalidArgument(
        "ParallelSessionsOptions.engine.provenance must be null: a shared "
        "record vector cannot be appended to concurrently across shards");
  }

  std::vector<SessionShardResult> results(shards.size());
  if (shards.empty()) return results;

  // The program text is identical across shards: parse it once and share
  // the compiled AST read-only with every task.
  DMTL_ASSIGN_OR_RETURN(Program program, EthPerpProgram(options.params));

  ThreadPool pool(options.ResolvedThreads());
  // Every task returns Ok: per-shard failures land in results[i].status
  // (fault isolation), and RunShard contains its own exceptions, so the
  // pool call cannot fail or throw. The belt-and-braces try/catch keeps a
  // pool-infrastructure fault (e.g. an injected "thread_pool.task" error)
  // from escaping as an exception or failing the whole run.
  try {
    Status pool_status = pool.ParallelFor(
        shards.size(), [&](size_t i) -> Status {
          RunShard(program, shards[i], options, &results[i]);
          return Status::Ok();
        });
    if (!pool_status.ok()) {
      // Infrastructure error injected below the shard pipeline: attribute
      // it to every shard that never got a verdict.
      for (SessionShardResult& r : results) {
        if (r.status.ok() && r.session.events.empty()) r.status = pool_status;
      }
    }
  } catch (const std::exception& e) {
    Status aborted = Status::Internal(
        std::string("shard pool aborted by exception: ") + e.what());
    for (SessionShardResult& r : results) {
      if (r.status.ok() && r.session.events.empty()) r.status = aborted;
    }
  }
  return results;
}

}  // namespace dmtl
