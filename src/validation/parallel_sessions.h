#ifndef DMTL_VALIDATION_PARALLEL_SESSIONS_H_
#define DMTL_VALIDATION_PARALLEL_SESSIONS_H_

#include <string>
#include <vector>

#include "src/chain/workload.h"
#include "src/common/status.h"
#include "src/contracts/market_params.h"
#include "src/eval/seminaive.h"
#include "src/storage/database.h"

namespace dmtl {

// The "millions of users" scaling axis: trading sessions are independent of
// one another (every contract predicate is keyed by account, and accounts
// never interact across sessions), so a fleet of account-sharded sessions
// materializes embarrassingly parallel. This driver runs N sessions across
// a thread pool, one full materialization per shard, and returns results in
// shard order - the output is identical to running the shards in a
// sequential loop, whatever the pool width.

// The outcome of one materialized shard.
struct SessionShardResult {
  std::string name;
  Session session;
  Database db;         // the materialized shard database
  EngineStats stats;
};

struct ParallelSessionsOptions {
  // Pool width for the shard loop: 0 = hardware concurrency, 1 = run the
  // shards sequentially on the calling thread.
  int num_threads = 0;
  MarketParams params;
  // Per-shard engine options. The session horizon (min_time/max_time) is
  // always overwritten from each shard's own window, and `provenance` is
  // ignored (a shared record vector cannot be appended to concurrently).
  // Defaults to the sequential engine inside each shard - the shard loop is
  // the outer parallelism axis; set engine.num_threads > 1 only for few,
  // huge shards.
  EngineOptions engine;

  // The concrete pool width RunParallelSessions uses for these options
  // (num_threads = 0 resolved against the hardware). Benches report this
  // instead of the raw request so the JSON records what actually ran.
  size_t ResolvedThreads() const;
};

// Derives `num_shards` independent account-sharded session configs from a
// base config: same shape and volume, disjoint seeds, suffixed names.
std::vector<WorkloadConfig> ShardConfigs(const WorkloadConfig& base,
                                         int num_shards);

// Generates and materializes every shard (ETH-PERP program, shard-local
// horizon) across the pool. Results are in shard order; on failure the
// lowest-indexed shard's error is returned.
Result<std::vector<SessionShardResult>> RunParallelSessions(
    const std::vector<WorkloadConfig>& shards,
    const ParallelSessionsOptions& options = {});

}  // namespace dmtl

#endif  // DMTL_VALIDATION_PARALLEL_SESSIONS_H_
