#ifndef DMTL_VALIDATION_PARALLEL_SESSIONS_H_
#define DMTL_VALIDATION_PARALLEL_SESSIONS_H_

#include <string>
#include <vector>

#include "src/chain/workload.h"
#include "src/common/status.h"
#include "src/contracts/market_params.h"
#include "src/eval/seminaive.h"
#include "src/storage/database.h"

namespace dmtl {

// The "millions of users" scaling axis: trading sessions are independent of
// one another (every contract predicate is keyed by account, and accounts
// never interact across sessions), so a fleet of account-sharded sessions
// materializes embarrassingly parallel. This driver runs N sessions across
// a thread pool, one full materialization per shard, and returns results in
// shard order - the output is identical to running the shards in a
// sequential loop, whatever the pool width.

// The outcome of one materialized shard. Failures are *isolated*: a shard
// that trips its deadline, exhausts a budget, or hits an evaluation fault
// reports that here and never aborts its siblings.
struct SessionShardResult {
  std::string name;
  Session session;
  Database db;         // the materialized shard database
  EngineStats stats;

  // Outcome of this shard's materialization (of the retry when one ran).
  // On failure `db` still holds the round-barrier-consistent partial state
  // and `stats` carries the stop diagnostics.
  Status status = Status::Ok();
  // Whether the degraded retry (sequential, chain acceleration off) ran.
  bool retried = false;
  // The first attempt's outcome when a retry ran (Ok otherwise).
  Status first_attempt_status = Status::Ok();

  bool ok() const { return status.ok(); }
};

struct ParallelSessionsOptions {
  // Pool width for the shard loop: 0 = hardware concurrency, 1 = run the
  // shards sequentially on the calling thread.
  int num_threads = 0;
  MarketParams params;
  // Per-shard engine options. min_time/max_time must be unset (each shard
  // materializes over its own session window) and `provenance` must be null
  // (a shared record vector cannot be appended to from every shard at
  // once); RunParallelSessions rejects either with InvalidArgument instead
  // of silently overriding them. Defaults to the sequential engine inside
  // each shard - the shard loop is the outer parallelism axis; set
  // engine.num_threads > 1 only for few, huge shards.
  EngineOptions engine;

  // One-shot degraded retry for failed shards: rebuild the shard database
  // from its (already generated) session and re-materialize sequentially
  // with chain acceleration off - the most conservative engine
  // configuration. Cancelled shards are never retried (the caller asked the
  // whole run to stop). Off by default: a deterministic failure usually
  // reproduces, and the retry doubles the shard's cost.
  bool retry_failed_sessions = false;

  // The concrete pool width RunParallelSessions uses for these options
  // (num_threads = 0 resolved against the hardware). Benches report this
  // instead of the raw request so the JSON records what actually ran.
  size_t ResolvedThreads() const;
};

// Derives `num_shards` independent account-sharded session configs from a
// base config: same shape and volume, disjoint seeds, suffixed names.
std::vector<WorkloadConfig> ShardConfigs(const WorkloadConfig& base,
                                         int num_shards);

// Generates and materializes every shard (ETH-PERP program, shard-local
// horizon) across the pool. Results are in shard order.
//
// Fault isolation: a shard failure (guard trip, budget exhaustion,
// evaluation fault - even an exception escaping a task) is captured in that
// shard's SessionShardResult::status; sibling shards always run to their
// own completion and the call itself still succeeds. The Result is an error
// only for setup problems that precede the shard loop (program parse
// failure, etc.).
Result<std::vector<SessionShardResult>> RunParallelSessions(
    const std::vector<WorkloadConfig>& shards,
    const ParallelSessionsOptions& options = {});

}  // namespace dmtl

#endif  // DMTL_VALIDATION_PARALLEL_SESSIONS_H_
