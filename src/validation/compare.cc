#include "src/validation/compare.h"

#include <cmath>
#include <map>
#include <sstream>

namespace dmtl {

namespace {

ErrorStats ComputeStats(const std::vector<double>& errors) {
  ErrorStats stats;
  stats.n = errors.size();
  if (errors.empty()) return stats;
  double sum = 0;
  for (double e : errors) {
    sum += e;
    stats.max_abs = std::max(stats.max_abs, std::fabs(e));
  }
  stats.mean = sum / static_cast<double>(errors.size());
  double var = 0;
  for (double e : errors) var += (e - stats.mean) * (e - stats.mean);
  // Sample standard deviation, matching the paper's summary statistics.
  stats.stddev = errors.size() > 1
                     ? std::sqrt(var / static_cast<double>(errors.size() - 1))
                     : 0;
  return stats;
}

}  // namespace

std::string SeriesComparison::ToString() const {
  std::ostringstream os;
  os.precision(6);
  os << "n=" << n << " max|diff|=" << max_abs_diff
     << " mean|diff|=" << mean_abs_diff;
  return os.str();
}

Result<SeriesComparison> CompareFrsSeries(const std::vector<FrsPoint>& a,
                                          const std::vector<FrsPoint>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument(
        "series lengths differ: " + std::to_string(a.size()) + " vs " +
        std::to_string(b.size()));
  }
  SeriesComparison cmp;
  cmp.n = a.size();
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time) {
      return Status::InvalidArgument("series sampled at different ticks");
    }
    double d = std::fabs(a[i].f - b[i].f);
    cmp.max_abs_diff = std::max(cmp.max_abs_diff, d);
    sum += d;
  }
  if (cmp.n > 0) cmp.mean_abs_diff = sum / static_cast<double>(cmp.n);
  return cmp;
}

std::string ErrorStats::ToString() const {
  std::ostringstream os;
  os.precision(6);
  os << "n=" << n << " mean=" << mean << " stddev=" << stddev
     << " max|e|=" << max_abs;
  return os.str();
}

std::string TradeErrorReport::ToString() const {
  return "returns: " + returns.ToString() + "\nfee:     " + fee.ToString() +
         "\nfunding: " + funding.ToString();
}

Result<TradeErrorReport> CompareTrades(
    const std::vector<TradeSettlement>& reference,
    const std::vector<TradeSettlement>& datalog) {
  std::map<std::pair<std::string, int64_t>, const TradeSettlement*> by_key;
  for (const TradeSettlement& t : reference) {
    by_key[{t.account, t.time}] = &t;
  }
  if (reference.size() != datalog.size()) {
    return Status::InvalidArgument(
        "trade counts differ: reference=" + std::to_string(reference.size()) +
        " datalog=" + std::to_string(datalog.size()));
  }
  std::vector<double> returns_err;
  std::vector<double> fee_err;
  std::vector<double> funding_err;
  for (const TradeSettlement& t : datalog) {
    auto it = by_key.find({t.account, t.time});
    if (it == by_key.end()) {
      return Status::InvalidArgument("unmatched trade " + t.account + "@" +
                                     std::to_string(t.time));
    }
    const TradeSettlement& r = *it->second;
    returns_err.push_back(t.pnl - r.pnl);
    fee_err.push_back(t.fee - r.fee);
    funding_err.push_back(t.funding - r.funding);
  }
  TradeErrorReport report;
  report.matched = datalog.size();
  report.returns = ComputeStats(returns_err);
  report.fee = ComputeStats(fee_err);
  report.funding = ComputeStats(funding_err);
  return report;
}

}  // namespace dmtl
