#ifndef DMTL_VALIDATION_COMPARE_H_
#define DMTL_VALIDATION_COMPARE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/contracts/settlement.h"

namespace dmtl {

// Pointwise comparison of two funding-rate sequences sampled at the same
// interaction ticks (the paper's Figure 4).
struct SeriesComparison {
  size_t n = 0;
  double max_abs_diff = 0;
  double mean_abs_diff = 0;

  std::string ToString() const;
};

Result<SeriesComparison> CompareFrsSeries(const std::vector<FrsPoint>& a,
                                          const std::vector<FrsPoint>& b);

// Error statistics of one metric across trades (the paper's Figure 5 rows).
struct ErrorStats {
  size_t n = 0;
  double mean = 0;
  double stddev = 0;
  double max_abs = 0;

  std::string ToString() const;
};

// Per-trade comparison joined on (account, close tick).
struct TradeErrorReport {
  ErrorStats returns;
  ErrorStats fee;
  ErrorStats funding;
  size_t matched = 0;

  std::string ToString() const;
};

// Errors are (datalog - reference); fails when the trade sets differ.
Result<TradeErrorReport> CompareTrades(
    const std::vector<TradeSettlement>& reference,
    const std::vector<TradeSettlement>& datalog);

}  // namespace dmtl

#endif  // DMTL_VALIDATION_COMPARE_H_
