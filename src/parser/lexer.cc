#include "src/parser/lexer.h"

#include <cctype>

namespace dmtl {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)); }
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kEof:
      return "<eof>";
    case TokenKind::kIdent:
    case TokenKind::kVariable:
    case TokenKind::kNumber:
      return "'" + text + "'";
    case TokenKind::kString:
      return "\"" + text + "\"";
    default:
      return "'" + text + "'";
  }
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  int line = 1;
  int col = 1;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string text, int tline, int tcol) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = tline;
    t.column = tcol;
    tokens.push_back(std::move(t));
  };
  while (i < input.size()) {
    char c = input[i];
    if (c == '\n') {
      ++line;
      col = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++col;
      ++i;
      continue;
    }
    if (c == '%') {  // line comment
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < input.size() && input[i + 1] == '*') {
      // Block comment; track newlines for positions.
      i += 2;
      col += 2;
      while (i + 1 < input.size() &&
             !(input[i] == '*' && input[i + 1] == '/')) {
        if (input[i] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
        ++i;
      }
      if (i + 1 >= input.size()) {
        return Status::ParseError("unterminated block comment at line " +
                                  std::to_string(line));
      }
      i += 2;
      col += 2;
      continue;
    }
    int tline = line;
    int tcol = col;
    if (c == '_' && (i + 1 >= input.size() || !IsIdentChar(input[i + 1]))) {
      push(TokenKind::kAnon, "_", tline, tcol);
      ++i;
      ++col;
      continue;
    }
    if (IsIdentStart(c) || c == '_') {
      size_t start = i;
      while (i < input.size() && IsIdentChar(input[i])) {
        ++i;
        ++col;
      }
      std::string text = input.substr(start, i - start);
      TokenKind kind = std::isupper(static_cast<unsigned char>(text[0]))
                           ? TokenKind::kVariable
                           : TokenKind::kIdent;
      if (text[0] == '_') kind = TokenKind::kVariable;
      push(kind, std::move(text), tline, tcol);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool saw_dot = false;
      bool saw_exp = false;
      while (i < input.size()) {
        char d = input[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++i;
          ++col;
          continue;
        }
        // A dot is part of the number only when followed by a digit, so the
        // statement terminator "3 ." and "p(3)." stay unambiguous.
        if (d == '.' && !saw_dot && !saw_exp && i + 1 < input.size() &&
            std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
          saw_dot = true;
          ++i;
          ++col;
          continue;
        }
        if ((d == 'e' || d == 'E') && !saw_exp && i + 1 < input.size() &&
            (std::isdigit(static_cast<unsigned char>(input[i + 1])) ||
             ((input[i + 1] == '+' || input[i + 1] == '-') &&
              i + 2 < input.size() &&
              std::isdigit(static_cast<unsigned char>(input[i + 2]))))) {
          saw_exp = true;
          saw_dot = true;  // exponent implies floating point
          ++i;
          ++col;
          if (input[i] == '+' || input[i] == '-') {
            ++i;
            ++col;
          }
          continue;
        }
        break;
      }
      push(TokenKind::kNumber, input.substr(start, i - start), tline, tcol);
      continue;
    }
    if (c == '"') {
      ++i;
      ++col;
      std::string text;
      while (i < input.size() && input[i] != '"') {
        if (input[i] == '\n') {
          return Status::ParseError("unterminated string at line " +
                                    std::to_string(tline));
        }
        text += input[i];
        ++i;
        ++col;
      }
      if (i >= input.size()) {
        return Status::ParseError("unterminated string at line " +
                                  std::to_string(tline));
      }
      ++i;
      ++col;
      push(TokenKind::kString, std::move(text), tline, tcol);
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < input.size() && input[i + 1] == b;
    };
    if (two(':', '-')) {
      push(TokenKind::kArrow, ":-", tline, tcol);
      i += 2;
      col += 2;
      continue;
    }
    if (two('=', '=')) {
      push(TokenKind::kEqEq, "==", tline, tcol);
      i += 2;
      col += 2;
      continue;
    }
    if (two('!', '=')) {
      push(TokenKind::kNe, "!=", tline, tcol);
      i += 2;
      col += 2;
      continue;
    }
    if (two('<', '=')) {
      push(TokenKind::kLe, "<=", tline, tcol);
      i += 2;
      col += 2;
      continue;
    }
    if (two('>', '=')) {
      push(TokenKind::kGe, ">=", tline, tcol);
      i += 2;
      col += 2;
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '(':
        kind = TokenKind::kLParen;
        break;
      case ')':
        kind = TokenKind::kRParen;
        break;
      case '[':
        kind = TokenKind::kLBracket;
        break;
      case ']':
        kind = TokenKind::kRBracket;
        break;
      case ',':
        kind = TokenKind::kComma;
        break;
      case '.':
        kind = TokenKind::kDot;
        break;
      case '@':
        kind = TokenKind::kAt;
        break;
      case '=':
        kind = TokenKind::kEq;
        break;
      case '<':
        kind = TokenKind::kLt;
        break;
      case '>':
        kind = TokenKind::kGt;
        break;
      case '+':
        kind = TokenKind::kPlus;
        break;
      case '-':
        kind = TokenKind::kMinus;
        break;
      case '*':
        kind = TokenKind::kStar;
        break;
      case '/':
        kind = TokenKind::kSlash;
        break;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at line " +
                                  std::to_string(tline) + ", column " +
                                  std::to_string(tcol));
    }
    push(kind, std::string(1, c), tline, tcol);
    ++i;
    ++col;
  }
  push(TokenKind::kEof, "", line, col);
  return tokens;
}

}  // namespace dmtl
