#ifndef DMTL_PARSER_LEXER_H_
#define DMTL_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace dmtl {

// Token kinds of the DatalogMTL surface syntax.
//
//   isOpen(A) :- boxminus[1,1] isOpen(A), not withdraw(A) .
//   price(47.5)@[10,20] .
//
// Identifiers starting with a lowercase letter are predicate/constant
// symbols; identifiers starting with an uppercase letter are variables;
// "_" is an anonymous variable. "%" starts a line comment.
enum class TokenKind : uint8_t {
  kIdent,      // lowercase-first identifier (predicate or symbol constant)
  kVariable,   // uppercase-first identifier
  kAnon,       // _
  kNumber,     // 12, -3.5 handled as minus + number
  kString,     // "..." (becomes a symbol constant)
  kLParen,     // (
  kRParen,     // )
  kLBracket,   // [
  kRBracket,   // ]
  kComma,      // ,
  kDot,        // .
  kAt,         // @
  kArrow,      // :-
  kEq,         // =
  kEqEq,       // ==
  kNe,         // !=
  kLt,         // <
  kLe,         // <=
  kGt,         // >
  kGe,         // >=
  kPlus,       // +
  kMinus,      // -
  kStar,       // *
  kSlash,      // /
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;  // identifier/number/string spelling
  int line = 0;
  int column = 0;

  std::string Describe() const;
};

// Tokenizes the full input; returns a ParseError with line/column on any
// unrecognized character.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace dmtl

#endif  // DMTL_PARSER_LEXER_H_
