#include "src/parser/parser.h"

#include <map>
#include <optional>

#include "src/parser/lexer.h"

namespace dmtl {

namespace {

bool IsUnaryOpName(const std::string& s, MtlOp* op) {
  if (s == "boxminus") {
    *op = MtlOp::kBoxMinus;
    return true;
  }
  if (s == "diamondminus") {
    *op = MtlOp::kDiamondMinus;
    return true;
  }
  if (s == "boxplus") {
    *op = MtlOp::kBoxPlus;
    return true;
  }
  if (s == "diamondplus") {
    *op = MtlOp::kDiamondPlus;
    return true;
  }
  return false;
}

bool IsAggName(const std::string& s, AggKind* kind) {
  if (s == "msum") {
    *kind = AggKind::kSum;
    return true;
  }
  if (s == "mcount") {
    *kind = AggKind::kCount;
    return true;
  }
  if (s == "mmin") {
    *kind = AggKind::kMin;
    return true;
  }
  if (s == "mmax") {
    *kind = AggKind::kMax;
    return true;
  }
  if (s == "mavg") {
    *kind = AggKind::kAvg;
    return true;
  }
  return false;
}

bool IsCompareToken(TokenKind k) {
  switch (k) {
    case TokenKind::kEq:
    case TokenKind::kEqEq:
    case TokenKind::kNe:
    case TokenKind::kLt:
    case TokenKind::kLe:
    case TokenKind::kGt:
    case TokenKind::kGe:
      return true;
    default:
      return false;
  }
}

// Recursive-descent parser over the token stream.
class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Status ParseUnit(Parser::ParsedUnit* out) {
    while (Peek().kind != TokenKind::kEof) {
      DMTL_RETURN_IF_ERROR(ParseStatement(out));
    }
    return out->program.CheckArities();
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }

  const Token& Next() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      Next();
      return true;
    }
    return false;
  }

  Status Error(const std::string& msg) const {
    const Token& t = Peek();
    return Status::ParseError(msg + " at line " + std::to_string(t.line) +
                              ", column " + std::to_string(t.column) +
                              " (found " + t.Describe() + ")");
  }

  Status Expect(TokenKind kind, const char* what) {
    if (!Accept(kind)) return Error(std::string("expected ") + what);
    return Status::Ok();
  }

  // --- statements --------------------------------------------------------

  Status ParseStatement(Parser::ParsedUnit* out) {
    // A statement starting with a head operator is necessarily a rule.
    MtlOp op;
    bool has_head_ops = Peek().kind == TokenKind::kIdent &&
                        IsUnaryOpName(Peek().text, &op);
    var_indices_.clear();
    var_names_.clear();

    std::vector<HeadAtom::HeadOp> head_ops;
    while (Peek().kind == TokenKind::kIdent &&
           IsUnaryOpName(Peek().text, &op)) {
      if (op != MtlOp::kBoxMinus && op != MtlOp::kBoxPlus) {
        return Error("only boxminus/boxplus are allowed in rule heads");
      }
      Next();
      DMTL_ASSIGN_OR_RETURN(Interval range, ParseOptionalRange());
      head_ops.push_back({op, range});
    }

    DMTL_ASSIGN_OR_RETURN(HeadAtom head, ParseHeadAtom());
    head.ops = std::move(head_ops);

    if (Peek().kind == TokenKind::kAt) {
      if (has_head_ops || head.aggregate.has_value()) {
        return Error("facts cannot carry operators or aggregates");
      }
      Next();
      return ParseFactTail(head, out);
    }
    if (Peek().kind == TokenKind::kDot) {
      Next();
      if (has_head_ops || head.aggregate.has_value()) {
        return Error("facts cannot carry operators or aggregates");
      }
      return AddFact(head, Interval::All(), out);
    }
    DMTL_RETURN_IF_ERROR(Expect(TokenKind::kArrow, "':-', '@' or '.'"));

    Rule rule;
    rule.head = std::move(head);
    while (true) {
      DMTL_ASSIGN_OR_RETURN(BodyLiteral lit, ParseBodyLiteral());
      rule.body.push_back(std::move(lit));
      if (Accept(TokenKind::kComma)) continue;
      break;
    }
    DMTL_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.' after rule body"));
    rule.var_names = var_names_;
    out->program.AddRule(std::move(rule));
    return Status::Ok();
  }

  Status ParseFactTail(const HeadAtom& head, Parser::ParsedUnit* out) {
    // '@' already consumed: either a point or an interval literal.
    if (Peek().kind == TokenKind::kLBracket ||
        Peek().kind == TokenKind::kLParen) {
      DMTL_ASSIGN_OR_RETURN(Interval iv,
                            ParseRange(/*require_nonnegative=*/false));
      DMTL_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.' after fact"));
      return AddFact(head, iv, out);
    }
    DMTL_ASSIGN_OR_RETURN(Rational t, ParseSignedRational());
    DMTL_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.' after fact"));
    return AddFact(head, Interval::Point(t), out);
  }

  Status AddFact(const HeadAtom& head, const Interval& iv,
                 Parser::ParsedUnit* out) {
    Tuple tuple;
    tuple.reserve(head.args.size());
    for (const Term& term : head.args) {
      if (term.is_variable()) {
        return Status::ParseError("facts must be ground: " +
                                  PredicateName(head.predicate));
      }
      tuple.push_back(term.value());
    }
    out->database.Insert(head.predicate, tuple, iv);
    return Status::Ok();
  }

  // --- head atoms ---------------------------------------------------------

  Result<HeadAtom> ParseHeadAtom() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected predicate name");
    }
    HeadAtom head;
    head.predicate = InternPredicate(Next().text);
    DMTL_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    if (!Accept(TokenKind::kRParen)) {
      int index = 0;
      while (true) {
        AggKind agg;
        if (Peek().kind == TokenKind::kIdent &&
            IsAggName(Peek().text, &agg) &&
            Peek(1).kind == TokenKind::kLParen) {
          if (head.aggregate.has_value()) {
            return Error("at most one aggregate per head");
          }
          Next();
          Next();
          DMTL_ASSIGN_OR_RETURN(Term inner, ParseTerm());
          DMTL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
          AggregateSpec spec;
          spec.kind = agg;
          spec.arg_index = index;
          spec.term = inner;
          head.aggregate = spec;
          head.args.push_back(inner);
        } else {
          DMTL_ASSIGN_OR_RETURN(Term term, ParseTerm());
          head.args.push_back(std::move(term));
        }
        ++index;
        if (Accept(TokenKind::kComma)) continue;
        break;
      }
      DMTL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    }
    return head;
  }

  // --- body literals ------------------------------------------------------

  Result<BodyLiteral> ParseBodyLiteral() {
    bool negated = false;
    if (Peek().kind == TokenKind::kIdent && Peek().text == "not") {
      negated = true;
      Next();
    }
    if (Peek().kind == TokenKind::kIdent && Peek().text == "timestamp" &&
        Peek(1).kind == TokenKind::kLParen) {
      if (negated) return Error("'timestamp' cannot be negated");
      Next();
      Next();
      if (Peek().kind != TokenKind::kVariable) {
        return Error("timestamp() takes a variable");
      }
      int var = VarIndex(Next().text);
      DMTL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      BuiltinAtom atom;
      atom.kind = BuiltinAtom::Kind::kTimestamp;
      atom.var = var;
      return BodyLiteral::Builtin(std::move(atom));
    }
    if (!negated && LiteralLooksBuiltin()) {
      DMTL_ASSIGN_OR_RETURN(BuiltinAtom atom, ParseBuiltin());
      return BodyLiteral::Builtin(std::move(atom));
    }
    DMTL_ASSIGN_OR_RETURN(MetricAtom atom, ParseMetricAtom());
    return BodyLiteral::Metric(std::move(atom), negated);
  }

  // Lookahead to the end of the current literal (',' or '.' at depth 0):
  // a comparison token at depth 0 marks it as a builtin.
  bool LiteralLooksBuiltin() const {
    int depth = 0;
    for (size_t i = pos_; i < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      switch (t.kind) {
        case TokenKind::kLParen:
        case TokenKind::kLBracket:
          ++depth;
          break;
        case TokenKind::kRParen:
        case TokenKind::kRBracket:
          --depth;
          break;
        case TokenKind::kComma:
        case TokenKind::kDot:
        case TokenKind::kEof:
          if (depth <= 0) return false;
          break;
        default:
          if (depth == 0 && IsCompareToken(t.kind)) return true;
          break;
      }
    }
    return false;
  }

  Result<BuiltinAtom> ParseBuiltin() {
    DMTL_ASSIGN_OR_RETURN(Expr lhs, ParseExpr());
    CmpOp cmp;
    bool plain_eq = false;
    switch (Peek().kind) {
      case TokenKind::kEq:
        cmp = CmpOp::kEq;
        plain_eq = true;
        break;
      case TokenKind::kEqEq:
        cmp = CmpOp::kEq;
        break;
      case TokenKind::kNe:
        cmp = CmpOp::kNe;
        break;
      case TokenKind::kLt:
        cmp = CmpOp::kLt;
        break;
      case TokenKind::kLe:
        cmp = CmpOp::kLe;
        break;
      case TokenKind::kGt:
        cmp = CmpOp::kGt;
        break;
      case TokenKind::kGe:
        cmp = CmpOp::kGe;
        break;
      default:
        return Error("expected comparison operator");
    }
    Next();
    DMTL_ASSIGN_OR_RETURN(Expr rhs, ParseExpr());
    BuiltinAtom atom;
    // `V = expr` is an assignment when V is a bare variable (it degrades to
    // an equality filter at evaluation time when V is already bound).
    if (plain_eq && lhs.op() == Expr::Op::kVar) {
      atom.kind = BuiltinAtom::Kind::kAssign;
      atom.var = lhs.var();
      atom.expr = std::move(rhs);
      return atom;
    }
    atom.kind = BuiltinAtom::Kind::kCompare;
    atom.cmp = cmp;
    atom.lhs = std::move(lhs);
    atom.rhs = std::move(rhs);
    return atom;
  }

  // --- metric atoms -------------------------------------------------------

  Result<MetricAtom> ParseMetricAtom() {
    DMTL_ASSIGN_OR_RETURN(MetricAtom lhs, ParsePrimaryMetric());
    if (Peek().kind == TokenKind::kIdent &&
        (Peek().text == "since" || Peek().text == "until")) {
      MtlOp op = Peek().text == "since" ? MtlOp::kSince : MtlOp::kUntil;
      Next();
      DMTL_ASSIGN_OR_RETURN(Interval range, ParseOptionalRange());
      DMTL_ASSIGN_OR_RETURN(MetricAtom rhs, ParsePrimaryMetric());
      return MetricAtom::Binary(op, range, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<MetricAtom> ParsePrimaryMetric() {
    if (Peek().kind == TokenKind::kLParen) {
      Next();
      DMTL_ASSIGN_OR_RETURN(MetricAtom inner, ParseMetricAtom());
      DMTL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected metric atom");
    }
    MtlOp op;
    if (IsUnaryOpName(Peek().text, &op)) {
      Next();
      DMTL_ASSIGN_OR_RETURN(Interval range, ParseOptionalRange());
      DMTL_ASSIGN_OR_RETURN(MetricAtom child, ParsePrimaryMetric());
      return MetricAtom::Unary(op, range, std::move(child));
    }
    if (Peek().text == "top") {
      Next();
      return MetricAtom::Truth();
    }
    if (Peek().text == "bottom") {
      Next();
      return MetricAtom::Falsity();
    }
    DMTL_ASSIGN_OR_RETURN(RelationalAtom atom, ParseRelationalAtom());
    return MetricAtom::Relational(std::move(atom));
  }

  Result<RelationalAtom> ParseRelationalAtom() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected predicate name");
    }
    RelationalAtom atom;
    atom.predicate = InternPredicate(Next().text);
    DMTL_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    if (!Accept(TokenKind::kRParen)) {
      while (true) {
        DMTL_ASSIGN_OR_RETURN(Term term, ParseTerm());
        atom.args.push_back(std::move(term));
        if (Accept(TokenKind::kComma)) continue;
        break;
      }
      DMTL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    }
    return atom;
  }

  Result<Term> ParseTerm() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVariable:
        return Term::Variable(VarIndex(Next().text));
      case TokenKind::kAnon: {
        Next();
        int index = static_cast<int>(var_names_.size());
        var_names_.push_back("_" + std::to_string(index));
        return Term::Variable(index);
      }
      case TokenKind::kIdent: {
        const std::string& text = Next().text;
        // Keyword literals round-trip through serialization.
        if (text == "true") return Term::Constant(Value::Bool(true));
        if (text == "false") return Term::Constant(Value::Bool(false));
        if (text == "null") return Term::Constant(Value::Null());
        return Term::Constant(Value::Symbol(text));
      }
      case TokenKind::kString:
        return Term::Constant(Value::Symbol(Next().text));
      case TokenKind::kNumber:
      case TokenKind::kMinus: {
        DMTL_ASSIGN_OR_RETURN(Value v, ParseNumberValue());
        return Term::Constant(std::move(v));
      }
      default:
        return Error("expected term");
    }
  }

  Result<Value> ParseNumberValue() {
    bool negative = Accept(TokenKind::kMinus);
    if (Peek().kind != TokenKind::kNumber) return Error("expected number");
    std::string text = Next().text;
    if (text.find('.') != std::string::npos ||
        text.find('e') != std::string::npos ||
        text.find('E') != std::string::npos) {
      double d = std::stod(text);
      return Value::Double(negative ? -d : d);
    }
    int64_t i = std::stoll(text);
    return Value::Int(negative ? -i : i);
  }

  // --- expressions --------------------------------------------------------

  Result<Expr> ParseExpr() { return ParseAddSub(); }

  Result<Expr> ParseAddSub() {
    DMTL_ASSIGN_OR_RETURN(Expr lhs, ParseMulDiv());
    while (Peek().kind == TokenKind::kPlus ||
           Peek().kind == TokenKind::kMinus) {
      Expr::Op op = Peek().kind == TokenKind::kPlus ? Expr::Op::kAdd
                                                    : Expr::Op::kSub;
      Next();
      DMTL_ASSIGN_OR_RETURN(Expr rhs, ParseMulDiv());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Expr> ParseMulDiv() {
    DMTL_ASSIGN_OR_RETURN(Expr lhs, ParseUnaryExpr());
    while (Peek().kind == TokenKind::kStar ||
           Peek().kind == TokenKind::kSlash) {
      Expr::Op op = Peek().kind == TokenKind::kStar ? Expr::Op::kMul
                                                    : Expr::Op::kDiv;
      Next();
      DMTL_ASSIGN_OR_RETURN(Expr rhs, ParseUnaryExpr());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Expr> ParseUnaryExpr() {
    if (Accept(TokenKind::kMinus)) {
      DMTL_ASSIGN_OR_RETURN(Expr child, ParseUnaryExpr());
      return Expr::Unary(Expr::Op::kNeg, std::move(child));
    }
    return ParsePrimaryExpr();
  }

  Result<Expr> ParsePrimaryExpr() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kNumber: {
        DMTL_ASSIGN_OR_RETURN(Value v, ParseNumberValue());
        return Expr::Const(std::move(v));
      }
      case TokenKind::kVariable:
        return Expr::Var(VarIndex(Next().text));
      case TokenKind::kLParen: {
        Next();
        DMTL_ASSIGN_OR_RETURN(Expr inner, ParseExpr());
        DMTL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kIdent: {
        const std::string name = t.text;
        if (name == "abs" || name == "min" || name == "max") {
          Next();
          DMTL_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
          DMTL_ASSIGN_OR_RETURN(Expr first, ParseExpr());
          if (name == "abs") {
            DMTL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
            return Expr::Unary(Expr::Op::kAbs, std::move(first));
          }
          DMTL_RETURN_IF_ERROR(Expect(TokenKind::kComma, "','"));
          DMTL_ASSIGN_OR_RETURN(Expr second, ParseExpr());
          DMTL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
          Expr::Op op = name == "min" ? Expr::Op::kMin : Expr::Op::kMax;
          return Expr::Binary(op, std::move(first), std::move(second));
        }
        // A bare symbol constant (usable in equality filters).
        Next();
        return Expr::Const(Value::Symbol(name));
      }
      default:
        return Error("expected expression");
    }
  }

  // --- ranges -------------------------------------------------------------

  // Parses "[lo,hi]" / "(lo,hi]" / ... after a metric operator; when the
  // next token does not open a range, defaults to [1,1] (the paper's
  // convention for the omitted subscript).
  Result<Interval> ParseOptionalRange() {
    if (Peek().kind == TokenKind::kLBracket) {
      return ParseRange(/*require_nonnegative=*/true);
    }
    // '(' after an operator would be ambiguous with a parenthesized metric
    // atom; operator ranges with an open lower bound therefore require the
    // bracket form "[" to be absent only in the default case.
    return Interval::Closed(Rational(1), Rational(1));
  }

  Result<Interval> ParseRange(bool require_nonnegative) {
    bool lo_open;
    if (Accept(TokenKind::kLBracket)) {
      lo_open = false;
    } else if (Accept(TokenKind::kLParen)) {
      lo_open = true;
    } else {
      return Error("expected '[' or '(' to open interval");
    }
    DMTL_ASSIGN_OR_RETURN(Bound lo, ParseBound(lo_open));
    DMTL_RETURN_IF_ERROR(Expect(TokenKind::kComma, "','"));
    DMTL_ASSIGN_OR_RETURN(Bound hi, ParseBound(/*open=*/false));
    if (Accept(TokenKind::kRBracket)) {
      // hi stays as parsed (closed) unless infinite.
    } else if (Accept(TokenKind::kRParen)) {
      hi.open = true;
    } else {
      return Error("expected ']' or ')' to close interval");
    }
    if (require_nonnegative &&
        ((!lo.infinite && lo.value.is_negative()) ||
         (!hi.infinite && hi.value.is_negative()))) {
      return Error("metric operator ranges must have non-negative bounds");
    }
    auto iv = Interval::Make(lo, hi);
    if (!iv.has_value()) return Error("empty interval");
    return *iv;
  }

  Result<Bound> ParseBound(bool open) {
    if (Peek().kind == TokenKind::kIdent && Peek().text == "inf") {
      Next();
      return Bound::Infinite();
    }
    if (Peek().kind == TokenKind::kMinus &&
        Peek(1).kind == TokenKind::kIdent && Peek(1).text == "inf") {
      Next();
      Next();
      return Bound::Infinite();
    }
    if (Peek().kind == TokenKind::kPlus && Peek(1).kind == TokenKind::kIdent &&
        Peek(1).text == "inf") {
      Next();
      Next();
      return Bound::Infinite();
    }
    DMTL_ASSIGN_OR_RETURN(Rational r, ParseSignedRational());
    Bound b;
    b.value = r;
    b.open = open;
    b.infinite = false;
    return b;
  }

  Result<Rational> ParseSignedRational() {
    bool negative = Accept(TokenKind::kMinus);
    if (Peek().kind != TokenKind::kNumber) return Error("expected number");
    std::string text = Next().text;
    // "3/4" rationals: a '/' directly after the number.
    if (Peek().kind == TokenKind::kSlash &&
        Peek(1).kind == TokenKind::kNumber) {
      Next();
      text += "/" + Next().text;
    }
    DMTL_ASSIGN_OR_RETURN(Rational r, Rational::FromString(text));
    return negative ? -r : r;
  }

  int VarIndex(const std::string& name) {
    auto it = var_indices_.find(name);
    if (it != var_indices_.end()) return it->second;
    int index = static_cast<int>(var_names_.size());
    var_names_.push_back(name);
    var_indices_.emplace(name, index);
    return index;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::map<std::string, int> var_indices_;
  std::vector<std::string> var_names_;
};

}  // namespace

Result<Parser::ParsedUnit> Parser::Parse(const std::string& text) {
  DMTL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  ParserImpl impl(std::move(tokens));
  ParsedUnit unit;
  DMTL_RETURN_IF_ERROR(impl.ParseUnit(&unit));
  return unit;
}

Result<Program> Parser::ParseProgram(const std::string& text) {
  DMTL_ASSIGN_OR_RETURN(ParsedUnit unit, Parse(text));
  if (unit.database.NumPredicates() > 0) {
    return Status::ParseError("expected rules only, found facts");
  }
  return std::move(unit.program);
}

Result<Database> Parser::ParseDatabase(const std::string& text) {
  DMTL_ASSIGN_OR_RETURN(ParsedUnit unit, Parse(text));
  if (unit.program.size() > 0) {
    return Status::ParseError("expected facts only, found rules");
  }
  return std::move(unit.database);
}

Result<Rule> Parser::ParseRule(const std::string& text) {
  DMTL_ASSIGN_OR_RETURN(Program program, ParseProgram(text));
  if (program.size() != 1) {
    return Status::ParseError("expected exactly one rule");
  }
  return program.rules()[0];
}

}  // namespace dmtl
