#ifndef DMTL_PARSER_PARSER_H_
#define DMTL_PARSER_PARSER_H_

#include <string>

#include "src/ast/program.h"
#include "src/common/status.h"
#include "src/storage/database.h"

namespace dmtl {

// Parses the DatalogMTL surface syntax. A source unit is a sequence of
// statements terminated by '.', each either a rule or a fact:
//
//   % MARGIN module
//   isOpen(A) :- tranM(A, M) .
//   isOpen(A) :- boxminus[1,1] isOpen(A), not withdraw(A) .
//   margin(A, M) :- tranM(A, M), not boxminus isOpen(A) .   % default [1,1]
//   event(msum(S)) :- eventContrib(A, S) .                  % aggregation
//   tdiff(T, T) :- start(), timestamp(T) .                  % unix(t) cast
//   alarm(X) :- (ok(X) since[0,5] reset(X)) .               % binary MTL
//
//   price(1301.25)@[1664272800, 1664272860) .
//   tranM(acc1, 20.0)@1664272805 .                          % punctual
//   skew(-2445.98)@0 .
//
// Conventions: lowercase-first identifiers are predicates/symbols,
// uppercase-first are variables, '_' is anonymous. Metric operator ranges
// default to [1,1] when omitted (the paper's convention). Head operators are
// restricted to boxminus/boxplus per the DatalogMTL head grammar.
class Parser {
 public:
  struct ParsedUnit {
    Program program;
    Database database;
  };

  // Parses rules and facts together.
  static Result<ParsedUnit> Parse(const std::string& text);

  // Parses text expected to contain only rules (facts are rejected).
  static Result<Program> ParseProgram(const std::string& text);

  // Parses text expected to contain only facts (rules are rejected).
  static Result<Database> ParseDatabase(const std::string& text);

  // Parses exactly one rule; convenience for tests.
  static Result<Rule> ParseRule(const std::string& text);
};

}  // namespace dmtl

#endif  // DMTL_PARSER_PARSER_H_
