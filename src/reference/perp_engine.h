#ifndef DMTL_REFERENCE_PERP_ENGINE_H_
#define DMTL_REFERENCE_PERP_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "src/chain/events.h"
#include "src/common/status.h"
#include "src/contracts/market_params.h"
#include "src/contracts/settlement.h"

namespace dmtl {

// Imperative reference implementation of the ETH-PERP contract: a direct
// state machine over the event stream, written the way the Solidity
// contract computes (Synthetix v1 funding/fee formulas), deliberately
// sharing no code with the DatalogMTL path. It serves as the ground truth
// the paper obtains from the blockchain: both implementations use IEEE
// doubles but different operation orders, so agreement is expected at the
// ~1e-12 level the paper reports, not bit-exactness.
class ReferencePerpEngine {
 public:
  struct AccountState {
    bool open = false;
    double margin = 0;
    double size = 0;      // signed ETH units
    double notional = 0;  // signed entry dollars
    double fees_accrued = 0;
    double last_f = 0;    // F recorded at the last position change
    double funding_accrued = 0;
  };

  explicit ReferencePerpEngine(MarketParams params = {})
      : params_(params) {}

  // Replays the session from its initial conditions. Call once.
  Status Run(const Session& session);

  // F(t_k) per interaction tick, in time order.
  const std::vector<FrsPoint>& frs_series() const { return frs_series_; }

  // One entry per closePos, in time order.
  const std::vector<TradeSettlement>& trades() const { return trades_; }

  // Margin balances paid out at withdrawal, per account.
  const std::map<std::string, double>& withdrawals() const {
    return withdrawals_;
  }

  // Post-run market state.
  double final_skew() const { return skew_; }
  double final_f() const { return f_; }

 private:
  MarketParams params_;
  double skew_ = 0;
  double f_ = 0;
  int64_t last_event_time_ = 0;
  std::map<std::string, AccountState> accounts_;
  std::vector<FrsPoint> frs_series_;
  std::vector<TradeSettlement> trades_;
  std::map<std::string, double> withdrawals_;
};

}  // namespace dmtl

#endif  // DMTL_REFERENCE_PERP_ENGINE_H_
