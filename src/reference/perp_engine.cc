#include "src/reference/perp_engine.h"

#include <cmath>

namespace dmtl {

Status ReferencePerpEngine::Run(const Session& session) {
  std::string error;
  if (!session.Validate(&error)) {
    return Status::InvalidArgument("invalid session: " + error);
  }
  skew_ = session.initial_skew;
  f_ = 0;
  last_event_time_ = session.start_time;

  size_t i = 0;
  const std::vector<MarketEvent>& events = session.events;
  while (i < events.size()) {
    // Group all method calls sharing a timestamp: the funding sequence
    // advances once per tick, the skew folds in every contribution, and
    // only then are the per-account effects (which read the post-trade
    // skew) applied.
    int64_t t = events[i].time;
    size_t first = i;
    while (i < events.size() && events[i].time == t) ++i;
    double price = session.PriceAt(t);

    // Funding sequence update against the pre-event skew (Figure 2).
    double dt = static_cast<double>(t - last_event_time_);
    double inst_rate = params_.InstantaneousRate(skew_, price);
    f_ += inst_rate * price * dt;
    last_event_time_ = t;
    frs_series_.push_back({t, f_});

    // Skew update: every interaction contributes (margin events with 0).
    for (size_t j = first; j < i; ++j) {
      const MarketEvent& e = events[j];
      if (e.kind == EventKind::kModifyPosition) {
        skew_ += e.amount;
      } else if (e.kind == EventKind::kClosePosition) {
        skew_ -= accounts_[e.account].size;
      }
    }

    // Account effects at the post-trade skew.
    for (size_t j = first; j < i; ++j) {
      const MarketEvent& e = events[j];
      AccountState& acc = accounts_[e.account];
      switch (e.kind) {
        case EventKind::kTransferMargin:
          if (!acc.open) {
            acc = AccountState();
            acc.open = true;
            acc.margin = e.amount;
          } else {
            acc.margin += e.amount;
          }
          break;
        case EventKind::kWithdraw:
          withdrawals_[e.account] = acc.margin;
          acc = AccountState();
          break;
        case EventKind::kModifyPosition: {
          double rate = params_.FeeRate(skew_, e.amount);
          acc.fees_accrued += std::fabs(e.amount * price * rate);
          if (acc.size == 0) {
            acc.funding_accrued = 0;
          } else {
            acc.funding_accrued += acc.size * (f_ - acc.last_f);
          }
          acc.last_f = f_;
          acc.size += e.amount;
          acc.notional += e.amount * price;
          break;
        }
        case EventKind::kClosePosition: {
          TradeSettlement trade;
          trade.account = e.account;
          trade.time = t;
          trade.pnl = acc.size * price - acc.notional;
          double rate = params_.FeeRate(skew_, -acc.size);
          trade.fee = acc.fees_accrued + std::fabs(acc.size * price * rate);
          trade.funding = acc.funding_accrued + acc.size * (f_ - acc.last_f);
          trades_.push_back(trade);
          acc.margin += trade.pnl - trade.fee + trade.funding;
          acc.size = 0;
          acc.notional = 0;
          acc.fees_accrued = 0;
          acc.funding_accrued = 0;
          acc.last_f = f_;
          break;
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace dmtl
