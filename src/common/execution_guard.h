#ifndef DMTL_COMMON_EXECUTION_GUARD_H_
#define DMTL_COMMON_EXECUTION_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "src/common/status.h"

namespace dmtl {

// Cooperative cancellation signal. A token is created by the caller, handed
// to the engine via EngineOptions::cancel_token, and may be cancelled from
// any thread while a materialization is running; the engine observes the
// flag at its guard check sites and stops at the next one. Cancellation is
// sticky: once set it cannot be cleared.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> cancelled_{false};
};

// ExecutionGuard bundles the engine's wall-clock deadline and cancellation
// checks behind a single thread-safe Check() call. The guard is *latching*:
// once a check trips, every subsequent Check() returns the same error, so a
// trip observed anywhere (a worker thread, a long join, an operator scan)
// is guaranteed to surface at the enclosing round barrier no matter which
// code path runs next. Interval/round budgets live in EngineOptions and are
// enforced by the engine itself; the guard covers the two asynchronous
// conditions (time and cancellation).
//
// A default-constructed guard (no deadline, no token) is disabled and
// Check() is a single branch.
class ExecutionGuard {
 public:
  ExecutionGuard() = default;
  // `deadline` is a relative budget, converted to an absolute steady-clock
  // deadline at construction time (i.e. when Materialize starts).
  ExecutionGuard(std::optional<std::chrono::milliseconds> deadline,
                 std::shared_ptr<const CancellationToken> token);

  ExecutionGuard(const ExecutionGuard&) = delete;
  ExecutionGuard& operator=(const ExecutionGuard&) = delete;

  bool enabled() const { return enabled_; }

  // Returns Ok, or the latched trip error (kCancelled / kDeadlineExceeded).
  // Safe to call concurrently from any number of threads.
  Status Check() const;

  // Convenience for void paths (operator scans) that cannot propagate a
  // Status: runs Check() and reports whether the guard has tripped. Callers
  // truncate their remaining work; the engine's round-end check sees the
  // latched trip and rolls the round back, so truncated partial results are
  // never observable.
  bool Tripped() const { return !Check().ok(); }

  // Number of Check() calls made against an enabled guard (diagnostics).
  uint64_t checks() const { return checks_.load(std::memory_order_relaxed); }

 private:
  // 0 = not tripped, otherwise a latched trip kind.
  enum TripCode : int { kNone = 0, kTripCancelled = 1, kTripDeadline = 2 };

  Status StatusForTrip(int code) const;

  bool enabled_ = false;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::chrono::milliseconds budget_{0};
  std::shared_ptr<const CancellationToken> token_;
  mutable std::atomic<int> tripped_{kNone};
  mutable std::atomic<uint64_t> checks_{0};
};

}  // namespace dmtl

#endif  // DMTL_COMMON_EXECUTION_GUARD_H_
