#ifndef DMTL_COMMON_FAULT_INJECTOR_H_
#define DMTL_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace dmtl {

// Deterministic fault injection for robustness tests. The injector is
// compiled in always and is a no-op by default: an unarmed process pays one
// relaxed atomic load per instrumented site. Tests arm a named site to fail
// exactly on the k-th hit after arming (one-shot — later hits succeed
// again, which is what lets retry paths be exercised), then assert that the
// failure surfaces as a clean Status with no crash, deadlock, or torn
// database.
//
// Site catalogue (see docs/robustness.md):
//   "seminaive.round"         - start of every fixpoint round (Materialize)
//   "seminaive.merge"         - before each buffered-sink barrier merge
//   "thread_pool.task"        - before each ParallelFor task body
//   "parallel_sessions.shard" - start of each session-shard attempt
//   "database.insert_set"     - inside Database::InsertSet (throw-only path)
//
// All methods are thread-safe. State is global; tests must Reset() when done.
class FaultInjector {
 public:
  // Arms `site` to make Fire() return `status` on the k-th hit (1-based)
  // counted from this call. Re-arming a site resets its count.
  static void Arm(const std::string& site, uint64_t hit, Status status);

  // Arms `site` to throw std::runtime_error(what) on the k-th hit instead.
  // Use for sites on paths that cannot return a Status (storage inserts);
  // Fire() at a throw-armed site also throws.
  static void ArmThrow(const std::string& site, uint64_t hit,
                       const std::string& what);

  // Disarms every site and clears all hit counts.
  static void Reset();

  // Hits recorded at `site` since it was last armed (0 if never armed;
  // unarmed sites do not count hits).
  static uint64_t HitCount(const std::string& site);

  // Called by instrumented code. Returns Ok unless `site` is armed and this
  // is its k-th hit, in which case it delivers the armed failure.
  static Status Fire(const char* site);

  // Variant for non-Status call sites: delivers the armed failure by
  // throwing (a Status-armed site throws runtime_error(status.ToString())).
  static void MaybeThrow(const char* site);
};

}  // namespace dmtl

#endif  // DMTL_COMMON_FAULT_INJECTOR_H_
