#include "src/common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "src/common/fault_injector.h"

namespace dmtl {

size_t ThreadPool::ResolveThreads(int requested) {
  if (requested > 0) return static_cast<size_t>(requested);
  size_t hw = std::thread::hardware_concurrency();
  return std::max<size_t>(hw, 1);
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t extra = num_threads < 1 ? 0 : num_threads - 1;
  workers_.reserve(extra);
  for (size_t i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  size_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (fn_ != nullptr && batch_epoch_ != seen_epoch);
      });
      if (shutdown_) return;
      seen_epoch = batch_epoch_;
    }
    RunTasks(seen_epoch);
  }
}

void ThreadPool::RunTasks(size_t epoch) {
  for (;;) {
    const TaskFn* fn;
    std::vector<Status>* statuses;
    std::vector<std::exception_ptr>* exceptions;
    size_t i;
    {
      // Claims are mutex-guarded: a worker waking late for a superseded
      // batch sees the epoch mismatch here and backs off instead of racing
      // the next batch's state. Tasks are whole rule evaluations or session
      // shards, so one lock round-trip per claim is noise.
      std::lock_guard<std::mutex> lock(mu_);
      if (batch_epoch_ != epoch || fn_ == nullptr) return;
      if (next_task_ >= num_tasks_) return;
      i = next_task_++;
      fn = fn_;
      statuses = statuses_;
      exceptions = exceptions_;
    }
    try {
      Status injected = FaultInjector::Fire("thread_pool.task");
      (*statuses)[i] = injected.ok() ? (*fn)(i) : std::move(injected);
    } catch (...) {
      (*exceptions)[i] = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (++tasks_done_ == num_tasks_) done_cv_.notify_all();
  }
}

Status ThreadPool::ParallelFor(size_t num_tasks, const TaskFn& fn) {
  return ParallelFor(num_tasks, fn, nullptr);
}

Status ThreadPool::ParallelFor(size_t num_tasks, const TaskFn& fn,
                               std::vector<Status>* statuses_out) {
  if (statuses_out != nullptr) statuses_out->clear();
  if (num_tasks == 0) return Status::Ok();

  std::vector<Status> statuses(num_tasks);
  std::vector<std::exception_ptr> exceptions(num_tasks);

  if (workers_.empty() || num_tasks == 1) {
    // No pool traffic needed; run inline with the same error contract.
    for (size_t i = 0; i < num_tasks; ++i) {
      try {
        Status injected = FaultInjector::Fire("thread_pool.task");
        statuses[i] = injected.ok() ? fn(i) : std::move(injected);
      } catch (...) {
        exceptions[i] = std::current_exception();
      }
    }
  } else {
    size_t epoch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fn_ = &fn;
      epoch = ++batch_epoch_;
      num_tasks_ = num_tasks;
      tasks_done_ = 0;
      next_task_ = 0;
      statuses_ = &statuses;
      exceptions_ = &exceptions;
    }
    work_cv_.notify_all();
    RunTasks(epoch);
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] { return tasks_done_ == num_tasks_; });
      // Unpublish so a worker that never woke for this batch cannot touch
      // the (stack-allocated) result vectors after we return.
      fn_ = nullptr;
      statuses_ = nullptr;
      exceptions_ = nullptr;
    }
  }

  if (statuses_out != nullptr) *statuses_out = statuses;
  for (size_t i = 0; i < num_tasks; ++i) {
    if (exceptions[i]) std::rethrow_exception(exceptions[i]);
  }
  for (size_t i = 0; i < num_tasks; ++i) {
    if (!statuses[i].ok()) return statuses[i];
  }
  return Status::Ok();
}

}  // namespace dmtl
