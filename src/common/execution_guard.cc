#include "src/common/execution_guard.h"

#include <string>
#include <utility>

namespace dmtl {

ExecutionGuard::ExecutionGuard(
    std::optional<std::chrono::milliseconds> deadline,
    std::shared_ptr<const CancellationToken> token)
    : token_(std::move(token)) {
  if (deadline.has_value()) {
    budget_ = *deadline;
    deadline_ = std::chrono::steady_clock::now() + *deadline;
  }
  enabled_ = deadline_.has_value() || token_ != nullptr;
}

Status ExecutionGuard::StatusForTrip(int code) const {
  if (code == kTripCancelled) {
    return Status::Cancelled("materialization cancelled via CancellationToken");
  }
  return Status::DeadlineExceeded("materialization deadline of " +
                                  std::to_string(budget_.count()) +
                                  " ms exceeded");
}

Status ExecutionGuard::Check() const {
  if (!enabled_) return Status::Ok();
  checks_.fetch_add(1, std::memory_order_relaxed);
  int code = tripped_.load(std::memory_order_acquire);
  if (code == kNone) {
    if (token_ != nullptr && token_->cancelled()) {
      code = kTripCancelled;
    } else if (deadline_.has_value() &&
               std::chrono::steady_clock::now() >= *deadline_) {
      code = kTripDeadline;
    }
    if (code != kNone) {
      // First trip wins so every thread reports the same reason.
      int expected = kNone;
      if (!tripped_.compare_exchange_strong(expected, code,
                                            std::memory_order_acq_rel)) {
        code = expected;
      }
    }
  }
  if (code == kNone) return Status::Ok();
  return StatusForTrip(code);
}

}  // namespace dmtl
