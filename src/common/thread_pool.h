#ifndef DMTL_COMMON_THREAD_POOL_H_
#define DMTL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"

namespace dmtl {

// A fixed-size pool of worker threads driving index-addressed task batches.
//
// The pool exists for the engine's round-barrier parallelism: a batch of
// independent tasks (rule evaluations, session shards) runs concurrently,
// and the caller needs the per-task results *in task order* so the merge
// step stays deterministic. ParallelFor therefore reports outcomes by task
// index, never by completion order:
//
//   - every task's Status is collected; the first non-OK Status *by task
//     index* is returned (not the first to fail in wall-clock order);
//   - an exception escaping a task is captured and rethrown on the calling
//     thread, again picking the lowest-index one. Remaining tasks still
//     run to completion either way - a batch is all-or-nothing observable.
//
// The calling thread participates in the batch, so ThreadPool(1) degrades
// to a plain sequential loop with zero thread traffic, and the pool is
// reusable across any number of ParallelFor batches (one batch at a time;
// ParallelFor itself is not reentrant).
class ThreadPool {
 public:
  // Total worker count *including* the calling thread: N threads means
  // N-1 background workers. num_threads < 1 is clamped to 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size() + 1; }

  // Maps an EngineOptions-style request to a concrete thread count:
  // 0 (or negative) selects std::thread::hardware_concurrency(), any
  // positive value is taken as-is. Always returns >= 1.
  static size_t ResolveThreads(int requested);

  using TaskFn = std::function<Status(size_t task_index)>;

  // Runs fn(0) ... fn(num_tasks - 1) across the pool (calling thread
  // included) and blocks until every task finished. See the class comment
  // for the deterministic error contract.
  Status ParallelFor(size_t num_tasks, const TaskFn& fn);

  // Like ParallelFor, but additionally hands back *every* task's Status by
  // task index in *statuses (resized to num_tasks), so callers that isolate
  // per-task faults (e.g. session shards) can report all failures, not just
  // the lowest-index one. The return value and exception behaviour are
  // unchanged; a task that threw leaves its slot Ok and rethrows instead.
  Status ParallelFor(size_t num_tasks, const TaskFn& fn,
                     std::vector<Status>* statuses_out);

 private:
  void WorkerLoop();
  // Claims and runs tasks of the batch published as `epoch` until none are
  // left; shared by workers and the calling thread.
  void RunTasks(size_t epoch);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new batch is published
  std::condition_variable done_cv_;  // caller: all tasks of the batch done
  bool shutdown_ = false;

  // State of the currently published batch; written by ParallelFor under
  // mu_, read by workers after the cv wait (which synchronizes).
  const TaskFn* fn_ = nullptr;
  size_t batch_epoch_ = 0;
  size_t num_tasks_ = 0;
  size_t tasks_done_ = 0;
  std::vector<Status>* statuses_ = nullptr;
  std::vector<std::exception_ptr>* exceptions_ = nullptr;
  size_t next_task_ = 0;
};

}  // namespace dmtl

#endif  // DMTL_COMMON_THREAD_POOL_H_
