#include "src/common/status.h"

namespace dmtl {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotStratifiable:
      return "NotStratifiable";
    case StatusCode::kUnsafeRule:
      return "UnsafeRule";
    case StatusCode::kEvalError:
      return "EvalError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dmtl
