#include "src/common/fault_injector.h"

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace dmtl {
namespace {

struct SiteState {
  uint64_t fail_on_hit = 0;
  uint64_t hits = 0;
  bool throws = false;
  bool fired = false;  // one-shot: the failure was already delivered
  Status status;
  std::string what;
};

// Leaked on purpose: sites may fire during static destruction of test
// fixtures and a destructed map would be worse than a few bytes held.
std::mutex& Mutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::unordered_map<std::string, SiteState>& Sites() {
  static auto* sites = new std::unordered_map<std::string, SiteState>;
  return *sites;
}

// Fast-path flag: false means no site is armed anywhere and Fire/MaybeThrow
// return without taking the lock.
std::atomic<bool> g_any_armed{false};

// Returns the armed failure to deliver at `site`, if this hit is the k-th.
// nullptr state == pass. Caller delivers outside the lock.
bool Advance(const char* site, SiteState* out) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Sites().find(site);
  if (it == Sites().end()) return false;
  SiteState& state = it->second;
  ++state.hits;
  if (state.fired || state.hits != state.fail_on_hit) return false;
  state.fired = true;
  *out = state;
  return true;
}

}  // namespace

void FaultInjector::Arm(const std::string& site, uint64_t hit, Status status) {
  std::lock_guard<std::mutex> lock(Mutex());
  SiteState state;
  state.fail_on_hit = hit;
  state.status = std::move(status);
  Sites()[site] = std::move(state);
  g_any_armed.store(true, std::memory_order_release);
}

void FaultInjector::ArmThrow(const std::string& site, uint64_t hit,
                             const std::string& what) {
  std::lock_guard<std::mutex> lock(Mutex());
  SiteState state;
  state.fail_on_hit = hit;
  state.throws = true;
  state.what = what;
  Sites()[site] = std::move(state);
  g_any_armed.store(true, std::memory_order_release);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(Mutex());
  Sites().clear();
  g_any_armed.store(false, std::memory_order_release);
}

uint64_t FaultInjector::HitCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Sites().find(site);
  return it == Sites().end() ? 0 : it->second.hits;
}

Status FaultInjector::Fire(const char* site) {
  if (!g_any_armed.load(std::memory_order_acquire)) return Status::Ok();
  SiteState hit;
  if (!Advance(site, &hit)) return Status::Ok();
  if (hit.throws) throw std::runtime_error(hit.what);
  return hit.status;
}

void FaultInjector::MaybeThrow(const char* site) {
  if (!g_any_armed.load(std::memory_order_acquire)) return;
  SiteState hit;
  if (!Advance(site, &hit)) return;
  throw std::runtime_error(hit.throws ? hit.what : hit.status.ToString());
}

}  // namespace dmtl
