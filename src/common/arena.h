#ifndef DMTL_COMMON_ARENA_H_
#define DMTL_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dmtl {

// Bump-pointer arena for round-local allocations.
//
// The semi-naive engine derives millions of short-lived IntervalSets per
// fixpoint round - row extents, operator outputs, window clamps, insertion
// deltas - all dead by the next round barrier. A RoundArena hands out
// storage by bumping a pointer through chunked blocks; nothing is freed
// individually. Reset() at the barrier rewinds the bump pointer and reuses
// the chunks for the next round, so the steady state performs no heap
// traffic at all for transient sets.
//
// Lifetime contract (see docs/ENGINE.md, "Memory architecture"): a buffer
// obtained from a RoundArena is valid until the arena's next Reset() or
// destruction. Anything that must outlive a round - relation storage,
// operator memos, chain guard caches - is pinned to the general heap via
// SmallIntervalVec::MarkPersistent() and never touches the arena.
//
// Not thread-safe; the engine gives each worker task its own arena and
// resets them all single-threaded at the barrier.
class RoundArena {
 public:
  // Chunks start small and double up to the cap: tiny strata don't reserve
  // megabytes, big rounds amortize the chunk walk, and the first
  // materialization in a process only faults in a few fresh pages (a 64 KiB
  // opening chunk showed up as a measurable first-call cost on the smallest
  // synthetic workloads).
  static constexpr size_t kInitialChunkBytes = 16 * 1024;
  static constexpr size_t kMaxChunkBytes = 1024 * 1024;
  static constexpr size_t kAlignment = 16;

  RoundArena() = default;
  RoundArena(const RoundArena&) = delete;
  RoundArena& operator=(const RoundArena&) = delete;

  // Returns `bytes` of storage aligned for Interval payloads, or nullptr
  // for oversized requests (callers fall back to the heap; the arena is an
  // optimization, never a requirement). Never returns nullptr for requests
  // up to kMaxChunkBytes / 2.
  void* Allocate(size_t bytes) {
    bytes = (bytes + kAlignment - 1) & ~(kAlignment - 1);
    if (bytes > kMaxChunkBytes / 2) {
      ++heap_fallbacks_;
      return nullptr;
    }
    if (pos_ + bytes > chunk_size_) Refill(bytes);
    void* out = cur_ + pos_;
    pos_ += bytes;
    bytes_allocated_ += bytes;
    ++allocs_;
    return out;
  }

  // Extends `ptr` (previously returned by Allocate with `old_bytes`) in
  // place when it is the arena's most recent allocation and the current
  // chunk has room. A vector that doubles repeatedly with no interleaved
  // spill then grows by advancing the bump pointer instead of abandoning
  // one cold buffer per doubling - without this, round-local churn streams
  // through fresh memory and loses to malloc's LIFO block reuse on
  // insert-heavy workloads. Returns false (caller reallocates) otherwise;
  // a pointer from a different arena or chunk never matches the tail
  // check, so mismatched calls are safely rejected.
  bool TryExtend(void* ptr, size_t old_bytes, size_t new_bytes) {
    old_bytes = (old_bytes + kAlignment - 1) & ~(kAlignment - 1);
    new_bytes = (new_bytes + kAlignment - 1) & ~(kAlignment - 1);
    if (new_bytes > kMaxChunkBytes / 2) return false;
    auto* p = static_cast<unsigned char*>(ptr);
    if (cur_ == nullptr || p + old_bytes != cur_ + pos_ || p < cur_) {
      return false;
    }
    const size_t base = pos_ - old_bytes;
    if (base + new_bytes > chunk_size_) return false;
    pos_ = base + new_bytes;
    bytes_allocated_ += new_bytes - old_bytes;
    return true;
  }

  // Gives back `ptr` (previously returned by Allocate with `bytes`) when it
  // is still the arena's most recent allocation, rewinding the bump pointer
  // over it. Kernel temporaries mostly die right after their consumer reads
  // them - last allocated, first dead - so this LIFO reclamation keeps the
  // round's working set as compact as malloc's free-block reuse instead of
  // streaming through cold memory (a single-round insert-heavy workload
  // touches megabytes otherwise and loses on cache capacity alone). A
  // pointer from a different arena or chunk never matches the tail check.
  bool TryReclaim(void* ptr, size_t bytes) {
    bytes = (bytes + kAlignment - 1) & ~(kAlignment - 1);
    auto* p = static_cast<unsigned char*>(ptr);
    if (cur_ == nullptr || p < cur_ || p + bytes != cur_ + pos_) {
      return false;
    }
    pos_ -= bytes;
    bytes_allocated_ -= bytes;
    return true;
  }

  // Rewinds the bump pointer to the first chunk, retaining storage for
  // reuse. Invalidates all outstanding allocations. A round that spilled
  // past its first chunk consolidates: the walked chain is replaced by one
  // chunk covering the round's whole footprint, so the steady state is a
  // single warm chunk — every later Reset is a pointer rewind, and the
  // TryExtend/TryReclaim tail tricks never lose to a chunk boundary. (The
  // opening chunk can then stay small for the first-call cost without
  // taxing multi-round workloads with a per-round small-chunk walk.)
  void Reset() {
    if (chunk_index_ > 0) Consolidate();
    chunk_index_ = 0;
    pos_ = 0;
    if (!chunks_.empty()) {
      cur_ = chunks_[0].data.get();
      chunk_size_ = chunks_[0].size;
    }
  }

  // --- observability (EngineStats::arena_*) -------------------------------
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t bytes_allocated() const { return bytes_allocated_; }
  size_t allocs() const { return allocs_; }
  size_t heap_fallbacks() const { return heap_fallbacks_; }
  void CountHeapFallback() { ++heap_fallbacks_; }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
  };

  void Refill(size_t bytes);
  void Consolidate();

  std::vector<Chunk> chunks_;
  unsigned char* cur_ = nullptr;
  size_t chunk_index_ = 0;  // chunk backing cur_ (SIZE_MAX-like 0 pre-init)
  size_t chunk_size_ = 0;
  size_t pos_ = 0;

  size_t bytes_reserved_ = 0;
  size_t bytes_allocated_ = 0;
  size_t allocs_ = 0;
  size_t heap_fallbacks_ = 0;
};

namespace arena_internal {
// Ambient arena of the calling thread; null when no scope is active.
extern thread_local RoundArena* g_current;
}  // namespace arena_internal

// RAII ambient-arena scope. While alive on a thread, SmallIntervalVec spills
// that would hit `operator new` are served from the arena instead (unless
// the vector is pinned). Scopes nest: the constructor saves the previous
// ambient arena and the destructor restores it, so pool threads that run
// nested materializations (ParallelSessions shards) stay correct.
class ArenaScope {
 public:
  explicit ArenaScope(RoundArena* arena)
      : saved_(arena_internal::g_current) {
    arena_internal::g_current = arena;
  }
  ~ArenaScope() { arena_internal::g_current = saved_; }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  RoundArena* saved_;
};

// The ambient arena of this thread, or null.
inline RoundArena* CurrentArena() { return arena_internal::g_current; }

}  // namespace dmtl

#endif  // DMTL_COMMON_ARENA_H_
