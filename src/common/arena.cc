#include "src/common/arena.h"

namespace dmtl {

namespace arena_internal {
thread_local RoundArena* g_current = nullptr;
}  // namespace arena_internal

void RoundArena::Refill(size_t bytes) {
  // Advance through retained chunks first (a Reset rewound us); allocate a
  // fresh, doubled chunk only past the end.
  while (chunk_index_ + 1 < chunks_.size()) {
    ++chunk_index_;
    cur_ = chunks_[chunk_index_].data.get();
    chunk_size_ = chunks_[chunk_index_].size;
    pos_ = 0;
    if (bytes <= chunk_size_) return;
  }
  size_t next_size = chunks_.empty() ? kInitialChunkBytes
                                     : chunks_.back().size * 2;
  if (next_size > kMaxChunkBytes) next_size = kMaxChunkBytes;
  if (next_size < bytes) next_size = bytes;  // bytes <= kMaxChunkBytes / 2
  Chunk c;
  c.data = std::make_unique<unsigned char[]>(next_size);
  c.size = next_size;
  chunks_.push_back(std::move(c));
  bytes_reserved_ += next_size;
  chunk_index_ = chunks_.size() - 1;
  cur_ = chunks_.back().data.get();
  chunk_size_ = next_size;
  pos_ = 0;
}

void RoundArena::Consolidate() {
  // Called from Reset when the finished round walked past its first chunk:
  // swap the whole chain for one chunk sized a power-of-two above the
  // round's footprint (capped — beyond the cap a handful of max-size
  // chunks is fine). The headroom matters: per-round footprints vary
  // (parallel task arenas especially), and consolidating to the exact
  // footprint would re-consolidate — one cold allocation each — every
  // time a round runs slightly larger than the last. The consolidated
  // chunk is cold for one round, then permanently warm.
  size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  if (total > kMaxChunkBytes) return;
  size_t size = kInitialChunkBytes;
  while (size < total) size *= 2;
  chunks_.clear();
  Chunk c;
  c.data = std::make_unique<unsigned char[]>(size);
  c.size = size;
  chunks_.push_back(std::move(c));
  bytes_reserved_ += size - total;
}

}  // namespace dmtl
