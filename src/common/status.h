#ifndef DMTL_COMMON_STATUS_H_
#define DMTL_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace dmtl {

// Error categories used across the library. Mirrors the RocksDB/Arrow
// convention of a small closed set of codes plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kParseError,        // text could not be parsed into a program/database
  kNotStratifiable,   // program has negation/aggregation inside a cycle
  kUnsafeRule,        // a rule variable cannot be bound
  kEvalError,         // runtime evaluation failure (e.g. division by zero)
  kNotFound,          // queried predicate/fact does not exist
  kResourceExhausted, // horizon/fact budget exceeded
  kDeadlineExceeded,  // wall-clock deadline passed (EngineOptions::deadline)
  kCancelled,         // cooperative cancellation (CancellationToken)
  kInternal,          // invariant violation - a bug in this library
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

// Status carries success or a (code, message) error. No exceptions cross the
// public API; fallible operations return Status or Result<T>.
class Status {
 public:
  // Success.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotStratifiable(std::string msg) {
    return Status(StatusCode::kNotStratifiable, std::move(msg));
  }
  static Status UnsafeRule(std::string msg) {
    return Status(StatusCode::kUnsafeRule, std::move(msg));
  }
  static Status EvalError(std::string msg) {
    return Status(StatusCode::kEvalError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "ParseError: unexpected token ..." - for logs and test output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Result<T> holds either a value or an error Status (Arrow's Result /
// absl::StatusOr pattern).
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : rep_(std::move(value)) {}
  Result(Status status) : rep_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(rep_);
  }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// Propagates errors out of the current function (expression statement form).
#define DMTL_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::dmtl::Status _dmtl_status = (expr);         \
    if (!_dmtl_status.ok()) return _dmtl_status;  \
  } while (false)

// Unwraps a Result<T> into `lhs` or propagates the error.
#define DMTL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define DMTL_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define DMTL_ASSIGN_OR_RETURN_NAME(a, b) DMTL_ASSIGN_OR_RETURN_CONCAT(a, b)
#define DMTL_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  DMTL_ASSIGN_OR_RETURN_IMPL(                                              \
      DMTL_ASSIGN_OR_RETURN_NAME(_dmtl_result_, __LINE__), lhs, rexpr)

}  // namespace dmtl

#endif  // DMTL_COMMON_STATUS_H_
