#!/usr/bin/env python3
"""Compare two BENCH_*.json artifacts and flag timing regressions.

Usage: tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Walks both JSON trees in parallel, pairs array elements positionally, and
compares every time-like numeric leaf (keys ending in "_s" or "_seconds",
or named "runtime_s"). A leaf that got more than `threshold` slower in the
candidate is a regression; the script prints every compared leaf with its
delta and exits 1 if any leaf regressed. Non-timing numeric leaves (counts,
speedups, thread widths) are reported when they differ but never fail the
diff. Stdlib only - runs anywhere python3 exists.
"""

import argparse
import json
import sys


def is_time_key(key):
    return key.endswith("_s") or key.endswith("_seconds") or key == "runtime_s"


def walk(base, cand, path, out):
    """Collects (path, key_is_time, base_val, cand_val) leaf pairs."""
    if isinstance(base, dict) and isinstance(cand, dict):
        for key in sorted(set(base) | set(cand)):
            if key not in base or key not in cand:
                out.append((f"{path}.{key}" if path else key, None,
                            base.get(key), cand.get(key)))
                continue
            walk(base[key], cand[key], f"{path}.{key}" if path else key, out)
    elif isinstance(base, list) and isinstance(cand, list):
        for i in range(max(len(base), len(cand))):
            sub = f"{path}[{i}]"
            if i >= len(base) or i >= len(cand):
                out.append((sub, None,
                            base[i] if i < len(base) else None,
                            cand[i] if i < len(cand) else None))
                continue
            walk(base[i], cand[i], sub, out)
    else:
        key = path.rsplit(".", 1)[-1].split("[", 1)[0]
        out.append((path, is_time_key(key), base, cand))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fractional slowdown that counts as a "
                             "regression (default 0.10 = 10%%)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.candidate) as f:
        cand = json.load(f)

    # Like-with-like check: timings taken with an armed execution guard
    # (context.guards_enabled) are not comparable to unguarded ones - the
    # guard's poll sites add a small but real cost. Refuse rather than
    # report a phantom regression. Artifacts from before the field existed
    # default to unguarded.
    base_guards = base.get("context", {}).get("guards_enabled", False)
    cand_guards = cand.get("context", {}).get("guards_enabled", False)
    if base_guards != cand_guards:
        print(f"cannot compare: baseline guards_enabled={base_guards} but "
              f"candidate guards_enabled={cand_guards} (guarded and "
              f"unguarded timings are not like-with-like)")
        return 2

    leaves = []
    walk(base, cand, "", leaves)

    regressions = []
    improvements = []
    for path, is_time, b, c in leaves:
        if is_time is None:
            print(f"  shape mismatch at {path}: baseline={b!r} "
                  f"candidate={c!r}")
            continue
        if not is_time:
            if b != c and not isinstance(b, str):
                print(f"  note  {path}: {b!r} -> {c!r}")
            continue
        if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
            print(f"  shape mismatch at {path}: baseline={b!r} "
                  f"candidate={c!r}")
            continue
        delta = (c - b) / b if b > 0 else 0.0
        line = f"{path}: {b:.4f}s -> {c:.4f}s ({delta:+.1%})"
        if delta > args.threshold:
            regressions.append(line)
            print(f"  REGRESSION {line}")
        elif delta < -args.threshold:
            improvements.append(line)
            print(f"  improved   {line}")
        else:
            print(f"  ok         {line}")

    print(f"\n{len(regressions)} regression(s), {len(improvements)} "
          f"improvement(s) beyond {args.threshold:.0%}")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
