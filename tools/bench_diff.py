#!/usr/bin/env python3
"""Compare two BENCH_*.json artifacts and flag timing regressions.

Usage: tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Walks both JSON trees in parallel and compares every time-like numeric
leaf (keys ending in "_s" or "_seconds", or named "runtime_s"). Arrays of
measurement points are paired by identity (events/window, pattern/depth,
benchmark name), not by position, so reordering or appending points never
misaligns the diff - but a point present in the baseline and missing from
the candidate is a hard failure: a silently dropped point would hide a
regression. Semantic counters (rounds, derived, parallel_derived) must
match exactly per point; a drift there means the two runs did different
work and the timing comparison is void. A time leaf that got more than
`threshold` slower in the candidate is a regression; the script prints
every compared leaf with its delta and exits 1 if any leaf regressed (or
drifted), 2 when the artifacts are not comparable at all. Other numeric
leaves (speedups, thread widths) are reported when they differ but never
fail the diff. Stdlib only - runs anywhere python3 exists.
"""

import argparse
import json
import sys

# Keys that identify a measurement point inside an array, in preference
# order. A point's pairing key is the tuple of values of every identity
# key it carries.
IDENTITY_KEYS = ("name", "run_name", "pattern", "events", "window_s",
                 "trades", "depth", "facts", "timeline", "shards",
                 "sessions")

# Per-point counters that must be bit-identical between comparable runs:
# they count derivation work, so a mismatch means the engines computed
# different things and timings are not comparable for that point.
SEMANTIC_KEYS = ("rounds", "derived", "parallel_derived")


def is_time_key(key):
    return key.endswith("_s") or key.endswith("_seconds") or key == "runtime_s"


def point_key(elem):
    """Identity tuple of a measurement point, or None when it has none."""
    if not isinstance(elem, dict):
        return None
    parts = tuple((k, elem[k]) for k in IDENTITY_KEYS if k in elem)
    return parts or None


def walk(base, cand, path, out, errors):
    """Collects (path, kind, base_val, cand_val) leaf pairs.

    kind: "time" | "semantic" | "note" | None (shape mismatch).
    """
    if isinstance(base, dict) and isinstance(cand, dict):
        for key in sorted(set(base) | set(cand)):
            if key not in base or key not in cand:
                out.append((f"{path}.{key}" if path else key, None,
                            base.get(key), cand.get(key)))
                continue
            walk(base[key], cand[key], f"{path}.{key}" if path else key,
                 out, errors)
        return
    if isinstance(base, list) and isinstance(cand, list):
        base_keys = [point_key(e) for e in base]
        cand_keys = [point_key(e) for e in cand]
        if all(k is not None for k in base_keys + cand_keys):
            cand_by_key = {k: e for k, e in zip(cand_keys, cand)}
            for k, elem in zip(base_keys, base):
                label = "/".join(str(v) for _, v in k)
                sub = f"{path}[{label}]"
                if k not in cand_by_key:
                    errors.append(
                        f"baseline point {sub} has no counterpart in the "
                        f"candidate - a dropped point can hide a "
                        f"regression; re-run the candidate bench with the "
                        f"full point set")
                    continue
                walk(elem, cand_by_key[k], sub, out, errors)
            for k in cand_by_key:
                if k not in base_keys:
                    label = "/".join(str(v) for _, v in k)
                    print(f"  note  {path}[{label}]: new point, "
                          f"no baseline to compare")
            return
        for i in range(max(len(base), len(cand))):
            sub = f"{path}[{i}]"
            if i >= len(base) or i >= len(cand):
                out.append((sub, None,
                            base[i] if i < len(base) else None,
                            cand[i] if i < len(cand) else None))
                continue
            walk(base[i], cand[i], sub, out, errors)
        return
    key = path.rsplit(".", 1)[-1].split("[", 1)[0]
    if is_time_key(key):
        kind = "time"
    elif key in SEMANTIC_KEYS:
        kind = "semantic"
    else:
        kind = "note"
    out.append((path, kind, base, cand))


def check_comparable(base, cand):
    """Returns an error string when the runs are not like-with-like."""
    base_ctx = base.get("context", {})
    cand_ctx = cand.get("context", {})
    # Timings taken with an armed execution guard are not comparable to
    # unguarded ones - the guard's poll sites add a small but real cost.
    # Artifacts from before the field existed default to unguarded.
    bg = base_ctx.get("guards_enabled", False)
    cg = cand_ctx.get("guards_enabled", False)
    if bg != cg:
        return (f"baseline guards_enabled={bg} but candidate "
                f"guards_enabled={cg} (guarded and unguarded timings are "
                f"not like-with-like)")
    # Every engine feature flag the benches record (enable_rule_compile,
    # enable_dense_timeline, enable_arena_alloc, enable_streaming, and any
    # future enable_* the context grows) selects a different execution
    # path, so cross-flag timings measure the feature toggle, not a
    # regression. The check is generic: a new flag added to the context is
    # automatically part of the like-with-like contract, no edit here.
    # Artifacts from before a flag existed are only compared when the other
    # side doesn't name it either (legacy-vs-legacy).
    flags = sorted(k for k in set(base_ctx) | set(cand_ctx)
                   if k.startswith("enable_"))
    for flag in flags:
        bv = base_ctx.get(flag)
        cv = cand_ctx.get(flag)
        if bv is not None and cv is not None and bv != cv:
            return (f"baseline {flag}={bv} but candidate {flag}={cv} "
                    f"(runs with different engine feature flags are not "
                    f"like-with-like; re-run one side with the matching "
                    f"setting)")
        if (bv is None) != (cv is None):
            print(f"  note  {flag}: baseline={bv!r} candidate={cv!r} "
                  f"(one artifact predates the field)")
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fractional slowdown that counts as a "
                             "regression (default 0.10 = 10%%)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.candidate) as f:
        cand = json.load(f)

    # Like-with-like check: refuse rather than report phantom regressions.
    error = check_comparable(base, cand)
    if error is not None:
        print(f"cannot compare: {error}")
        return 2

    leaves = []
    errors = []
    walk(base, cand, "", leaves, errors)

    regressions = []
    improvements = []
    drifts = []
    for path, kind, b, c in leaves:
        if kind is None:
            print(f"  shape mismatch at {path}: baseline={b!r} "
                  f"candidate={c!r}")
            continue
        if kind == "semantic":
            if b != c:
                drifts.append(path)
                print(f"  DRIFT      {path}: {b!r} -> {c!r} (semantic "
                      f"counter changed: the runs did different work)")
            else:
                print(f"  same       {path}: {b!r}")
            continue
        if kind == "note":
            # A JSON null means the metric was undefined for that run (e.g.
            # speedup when the pool resolved to one thread) - nothing to
            # compare, not a change worth flagging.
            if b is None or c is None:
                continue
            if b != c and not isinstance(b, str):
                print(f"  note  {path}: {b!r} -> {c!r}")
            continue
        if b is None or c is None:
            continue
        if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
            print(f"  shape mismatch at {path}: baseline={b!r} "
                  f"candidate={c!r}")
            continue
        delta = (c - b) / b if b > 0 else 0.0
        line = f"{path}: {b:.4f}s -> {c:.4f}s ({delta:+.1%})"
        if delta > args.threshold:
            regressions.append(line)
            print(f"  REGRESSION {line}")
        elif delta < -args.threshold:
            improvements.append(line)
            print(f"  improved   {line}")
        else:
            print(f"  ok         {line}")

    for error in errors:
        print(f"  MISSING    {error}")

    print(f"\n{len(regressions)} regression(s), {len(improvements)} "
          f"improvement(s) beyond {args.threshold:.0%}, "
          f"{len(drifts)} semantic drift(s), {len(errors)} missing point(s)")
    return 1 if regressions or drifts or errors else 0


if __name__ == "__main__":
    sys.exit(main())
