// The dmtl command-line reasoner. See src/tools/cli.h for usage.

#include "src/tools/cli.h"

int main(int argc, char** argv) { return dmtl::CliMain(argc, argv); }
