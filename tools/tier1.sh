#!/usr/bin/env bash
# Tier-1 gate: full build + test suite, then the parallel-engine
# equivalence and thread-pool tests again under ThreadSanitizer.
# Run from the repository root: tools/tier1.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== tier1: standard build ==="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure

echo "=== tier1: ThreadSanitizer build (parallel tests) ==="
cmake -B build-tsan -S . -DDMTL_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target dmtl_tests
ctest --test-dir build-tsan --output-on-failure -R "ThreadPool|Parallel|JoinPlan|PlannerFuzz|IntervalDelta|DeltaFuzz|Guard|FaultInjection"

echo "tier1: OK"
