file(REMOVE_RECURSE
  "CMakeFiles/eth_perp_session.dir/eth_perp_session.cpp.o"
  "CMakeFiles/eth_perp_session.dir/eth_perp_session.cpp.o.d"
  "eth_perp_session"
  "eth_perp_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eth_perp_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
