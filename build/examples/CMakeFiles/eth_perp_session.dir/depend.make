# Empty dependencies file for eth_perp_session.
# This may be replaced when dependencies are built.
