# Empty dependencies file for risk_monitor.
# This may be replaced when dependencies are built.
