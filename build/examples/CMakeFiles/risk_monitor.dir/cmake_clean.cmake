file(REMOVE_RECURSE
  "CMakeFiles/risk_monitor.dir/risk_monitor.cpp.o"
  "CMakeFiles/risk_monitor.dir/risk_monitor.cpp.o.d"
  "risk_monitor"
  "risk_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risk_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
