file(REMOVE_RECURSE
  "CMakeFiles/temporal_reachability.dir/temporal_reachability.cpp.o"
  "CMakeFiles/temporal_reachability.dir/temporal_reachability.cpp.o.d"
  "temporal_reachability"
  "temporal_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
