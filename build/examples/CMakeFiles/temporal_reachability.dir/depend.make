# Empty dependencies file for temporal_reachability.
# This may be replaced when dependencies are built.
