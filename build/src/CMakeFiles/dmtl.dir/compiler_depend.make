# Empty compiler generated dependencies file for dmtl.
# This may be replaced when dependencies are built.
