file(REMOVE_RECURSE
  "libdmtl.a"
)
