
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dependency_graph.cc" "src/CMakeFiles/dmtl.dir/analysis/dependency_graph.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/analysis/dependency_graph.cc.o.d"
  "/root/repo/src/analysis/dot_export.cc" "src/CMakeFiles/dmtl.dir/analysis/dot_export.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/analysis/dot_export.cc.o.d"
  "/root/repo/src/analysis/safety.cc" "src/CMakeFiles/dmtl.dir/analysis/safety.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/analysis/safety.cc.o.d"
  "/root/repo/src/analysis/stratifier.cc" "src/CMakeFiles/dmtl.dir/analysis/stratifier.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/analysis/stratifier.cc.o.d"
  "/root/repo/src/ast/atom.cc" "src/CMakeFiles/dmtl.dir/ast/atom.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/ast/atom.cc.o.d"
  "/root/repo/src/ast/expr.cc" "src/CMakeFiles/dmtl.dir/ast/expr.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/ast/expr.cc.o.d"
  "/root/repo/src/ast/program.cc" "src/CMakeFiles/dmtl.dir/ast/program.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/ast/program.cc.o.d"
  "/root/repo/src/ast/rule.cc" "src/CMakeFiles/dmtl.dir/ast/rule.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/ast/rule.cc.o.d"
  "/root/repo/src/ast/term.cc" "src/CMakeFiles/dmtl.dir/ast/term.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/ast/term.cc.o.d"
  "/root/repo/src/ast/value.cc" "src/CMakeFiles/dmtl.dir/ast/value.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/ast/value.cc.o.d"
  "/root/repo/src/chain/events.cc" "src/CMakeFiles/dmtl.dir/chain/events.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/chain/events.cc.o.d"
  "/root/repo/src/chain/price_feed.cc" "src/CMakeFiles/dmtl.dir/chain/price_feed.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/chain/price_feed.cc.o.d"
  "/root/repo/src/chain/replayer.cc" "src/CMakeFiles/dmtl.dir/chain/replayer.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/chain/replayer.cc.o.d"
  "/root/repo/src/chain/subgraph.cc" "src/CMakeFiles/dmtl.dir/chain/subgraph.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/chain/subgraph.cc.o.d"
  "/root/repo/src/chain/workload.cc" "src/CMakeFiles/dmtl.dir/chain/workload.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/chain/workload.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/dmtl.dir/common/status.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/common/status.cc.o.d"
  "/root/repo/src/contracts/eth_perp_program.cc" "src/CMakeFiles/dmtl.dir/contracts/eth_perp_program.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/contracts/eth_perp_program.cc.o.d"
  "/root/repo/src/contracts/market_params.cc" "src/CMakeFiles/dmtl.dir/contracts/market_params.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/contracts/market_params.cc.o.d"
  "/root/repo/src/contracts/risk_rules.cc" "src/CMakeFiles/dmtl.dir/contracts/risk_rules.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/contracts/risk_rules.cc.o.d"
  "/root/repo/src/contracts/statement.cc" "src/CMakeFiles/dmtl.dir/contracts/statement.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/contracts/statement.cc.o.d"
  "/root/repo/src/contracts/trade_extractor.cc" "src/CMakeFiles/dmtl.dir/contracts/trade_extractor.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/contracts/trade_extractor.cc.o.d"
  "/root/repo/src/engine/reasoner.cc" "src/CMakeFiles/dmtl.dir/engine/reasoner.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/engine/reasoner.cc.o.d"
  "/root/repo/src/eval/aggregate_eval.cc" "src/CMakeFiles/dmtl.dir/eval/aggregate_eval.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/eval/aggregate_eval.cc.o.d"
  "/root/repo/src/eval/bindings.cc" "src/CMakeFiles/dmtl.dir/eval/bindings.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/eval/bindings.cc.o.d"
  "/root/repo/src/eval/builtin_eval.cc" "src/CMakeFiles/dmtl.dir/eval/builtin_eval.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/eval/builtin_eval.cc.o.d"
  "/root/repo/src/eval/chain_accel.cc" "src/CMakeFiles/dmtl.dir/eval/chain_accel.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/eval/chain_accel.cc.o.d"
  "/root/repo/src/eval/operators.cc" "src/CMakeFiles/dmtl.dir/eval/operators.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/eval/operators.cc.o.d"
  "/root/repo/src/eval/rule_eval.cc" "src/CMakeFiles/dmtl.dir/eval/rule_eval.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/eval/rule_eval.cc.o.d"
  "/root/repo/src/eval/seminaive.cc" "src/CMakeFiles/dmtl.dir/eval/seminaive.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/eval/seminaive.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/CMakeFiles/dmtl.dir/parser/lexer.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/parser/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/dmtl.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/parser/parser.cc.o.d"
  "/root/repo/src/reference/perp_engine.cc" "src/CMakeFiles/dmtl.dir/reference/perp_engine.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/reference/perp_engine.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/dmtl.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/serialize.cc" "src/CMakeFiles/dmtl.dir/storage/serialize.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/storage/serialize.cc.o.d"
  "/root/repo/src/synth/temporal_bench.cc" "src/CMakeFiles/dmtl.dir/synth/temporal_bench.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/synth/temporal_bench.cc.o.d"
  "/root/repo/src/temporal/interval.cc" "src/CMakeFiles/dmtl.dir/temporal/interval.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/temporal/interval.cc.o.d"
  "/root/repo/src/temporal/interval_set.cc" "src/CMakeFiles/dmtl.dir/temporal/interval_set.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/temporal/interval_set.cc.o.d"
  "/root/repo/src/temporal/rational.cc" "src/CMakeFiles/dmtl.dir/temporal/rational.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/temporal/rational.cc.o.d"
  "/root/repo/src/tools/cli.cc" "src/CMakeFiles/dmtl.dir/tools/cli.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/tools/cli.cc.o.d"
  "/root/repo/src/validation/compare.cc" "src/CMakeFiles/dmtl.dir/validation/compare.cc.o" "gcc" "src/CMakeFiles/dmtl.dir/validation/compare.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
