# Empty dependencies file for contract_scaling.
# This may be replaced when dependencies are built.
