file(REMOVE_RECURSE
  "CMakeFiles/contract_scaling.dir/contract_scaling.cc.o"
  "CMakeFiles/contract_scaling.dir/contract_scaling.cc.o.d"
  "contract_scaling"
  "contract_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contract_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
