file(REMOVE_RECURSE
  "CMakeFiles/fig2_market_metrics.dir/fig2_market_metrics.cc.o"
  "CMakeFiles/fig2_market_metrics.dir/fig2_market_metrics.cc.o.d"
  "fig2_market_metrics"
  "fig2_market_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_market_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
