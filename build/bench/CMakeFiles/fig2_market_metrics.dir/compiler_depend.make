# Empty compiler generated dependencies file for fig2_market_metrics.
# This may be replaced when dependencies are built.
