file(REMOVE_RECURSE
  "CMakeFiles/fig1_dependency_graph.dir/fig1_dependency_graph.cc.o"
  "CMakeFiles/fig1_dependency_graph.dir/fig1_dependency_graph.cc.o.d"
  "fig1_dependency_graph"
  "fig1_dependency_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_dependency_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
