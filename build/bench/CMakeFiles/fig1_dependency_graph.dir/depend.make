# Empty dependencies file for fig1_dependency_graph.
# This may be replaced when dependencies are built.
