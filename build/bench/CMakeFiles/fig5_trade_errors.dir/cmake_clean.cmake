file(REMOVE_RECURSE
  "CMakeFiles/fig5_trade_errors.dir/fig5_trade_errors.cc.o"
  "CMakeFiles/fig5_trade_errors.dir/fig5_trade_errors.cc.o.d"
  "fig5_trade_errors"
  "fig5_trade_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_trade_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
