# Empty dependencies file for fig5_trade_errors.
# This may be replaced when dependencies are built.
