# Empty compiler generated dependencies file for perf_intervals.
# This may be replaced when dependencies are built.
