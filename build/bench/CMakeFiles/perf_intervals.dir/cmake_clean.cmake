file(REMOVE_RECURSE
  "CMakeFiles/perf_intervals.dir/perf_intervals.cc.o"
  "CMakeFiles/perf_intervals.dir/perf_intervals.cc.o.d"
  "perf_intervals"
  "perf_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
