# Empty compiler generated dependencies file for micro_temporal.
# This may be replaced when dependencies are built.
