# Empty dependencies file for fig4_frs_comparison.
# This may be replaced when dependencies are built.
