file(REMOVE_RECURSE
  "CMakeFiles/engine_stress.dir/engine_stress.cc.o"
  "CMakeFiles/engine_stress.dir/engine_stress.cc.o.d"
  "engine_stress"
  "engine_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
