# Empty dependencies file for engine_stress.
# This may be replaced when dependencies are built.
