file(REMOVE_RECURSE
  "CMakeFiles/fig3_input_data.dir/fig3_input_data.cc.o"
  "CMakeFiles/fig3_input_data.dir/fig3_input_data.cc.o.d"
  "fig3_input_data"
  "fig3_input_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_input_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
