# Empty dependencies file for fig3_input_data.
# This may be replaced when dependencies are built.
