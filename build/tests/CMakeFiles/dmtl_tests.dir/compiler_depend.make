# Empty compiler generated dependencies file for dmtl_tests.
# This may be replaced when dependencies are built.
