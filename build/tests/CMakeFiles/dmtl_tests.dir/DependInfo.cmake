
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/dependency_graph_test.cc" "tests/CMakeFiles/dmtl_tests.dir/analysis/dependency_graph_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/analysis/dependency_graph_test.cc.o.d"
  "/root/repo/tests/analysis/safety_test.cc" "tests/CMakeFiles/dmtl_tests.dir/analysis/safety_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/analysis/safety_test.cc.o.d"
  "/root/repo/tests/analysis/stratifier_test.cc" "tests/CMakeFiles/dmtl_tests.dir/analysis/stratifier_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/analysis/stratifier_test.cc.o.d"
  "/root/repo/tests/ast/ast_test.cc" "tests/CMakeFiles/dmtl_tests.dir/ast/ast_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/ast/ast_test.cc.o.d"
  "/root/repo/tests/ast/value_test.cc" "tests/CMakeFiles/dmtl_tests.dir/ast/value_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/ast/value_test.cc.o.d"
  "/root/repo/tests/chain/replayer_test.cc" "tests/CMakeFiles/dmtl_tests.dir/chain/replayer_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/chain/replayer_test.cc.o.d"
  "/root/repo/tests/chain/workload_test.cc" "tests/CMakeFiles/dmtl_tests.dir/chain/workload_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/chain/workload_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/dmtl_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/contracts/eth_perp_fees_test.cc" "tests/CMakeFiles/dmtl_tests.dir/contracts/eth_perp_fees_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/contracts/eth_perp_fees_test.cc.o.d"
  "/root/repo/tests/contracts/eth_perp_funding_test.cc" "tests/CMakeFiles/dmtl_tests.dir/contracts/eth_perp_funding_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/contracts/eth_perp_funding_test.cc.o.d"
  "/root/repo/tests/contracts/eth_perp_margin_test.cc" "tests/CMakeFiles/dmtl_tests.dir/contracts/eth_perp_margin_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/contracts/eth_perp_margin_test.cc.o.d"
  "/root/repo/tests/contracts/eth_perp_position_test.cc" "tests/CMakeFiles/dmtl_tests.dir/contracts/eth_perp_position_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/contracts/eth_perp_position_test.cc.o.d"
  "/root/repo/tests/contracts/eth_perp_program_text_test.cc" "tests/CMakeFiles/dmtl_tests.dir/contracts/eth_perp_program_text_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/contracts/eth_perp_program_text_test.cc.o.d"
  "/root/repo/tests/contracts/market_params_test.cc" "tests/CMakeFiles/dmtl_tests.dir/contracts/market_params_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/contracts/market_params_test.cc.o.d"
  "/root/repo/tests/contracts/risk_rules_test.cc" "tests/CMakeFiles/dmtl_tests.dir/contracts/risk_rules_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/contracts/risk_rules_test.cc.o.d"
  "/root/repo/tests/contracts/statement_test.cc" "tests/CMakeFiles/dmtl_tests.dir/contracts/statement_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/contracts/statement_test.cc.o.d"
  "/root/repo/tests/engine/reasoner_test.cc" "tests/CMakeFiles/dmtl_tests.dir/engine/reasoner_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/engine/reasoner_test.cc.o.d"
  "/root/repo/tests/eval/aggregate_eval_test.cc" "tests/CMakeFiles/dmtl_tests.dir/eval/aggregate_eval_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/eval/aggregate_eval_test.cc.o.d"
  "/root/repo/tests/eval/builtin_eval_test.cc" "tests/CMakeFiles/dmtl_tests.dir/eval/builtin_eval_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/eval/builtin_eval_test.cc.o.d"
  "/root/repo/tests/eval/chain_accel_test.cc" "tests/CMakeFiles/dmtl_tests.dir/eval/chain_accel_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/eval/chain_accel_test.cc.o.d"
  "/root/repo/tests/eval/operators_test.cc" "tests/CMakeFiles/dmtl_tests.dir/eval/operators_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/eval/operators_test.cc.o.d"
  "/root/repo/tests/eval/provenance_test.cc" "tests/CMakeFiles/dmtl_tests.dir/eval/provenance_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/eval/provenance_test.cc.o.d"
  "/root/repo/tests/eval/rule_eval_edge_test.cc" "tests/CMakeFiles/dmtl_tests.dir/eval/rule_eval_edge_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/eval/rule_eval_edge_test.cc.o.d"
  "/root/repo/tests/eval/rule_eval_test.cc" "tests/CMakeFiles/dmtl_tests.dir/eval/rule_eval_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/eval/rule_eval_test.cc.o.d"
  "/root/repo/tests/eval/seminaive_test.cc" "tests/CMakeFiles/dmtl_tests.dir/eval/seminaive_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/eval/seminaive_test.cc.o.d"
  "/root/repo/tests/eval/since_until_test.cc" "tests/CMakeFiles/dmtl_tests.dir/eval/since_until_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/eval/since_until_test.cc.o.d"
  "/root/repo/tests/integration/contract_properties_test.cc" "tests/CMakeFiles/dmtl_tests.dir/integration/contract_properties_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/integration/contract_properties_test.cc.o.d"
  "/root/repo/tests/integration/differential_test.cc" "tests/CMakeFiles/dmtl_tests.dir/integration/differential_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/integration/differential_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/dmtl_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/integration/paper_examples_test.cc" "tests/CMakeFiles/dmtl_tests.dir/integration/paper_examples_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/integration/paper_examples_test.cc.o.d"
  "/root/repo/tests/parser/lexer_test.cc" "tests/CMakeFiles/dmtl_tests.dir/parser/lexer_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/parser/lexer_test.cc.o.d"
  "/root/repo/tests/parser/parser_test.cc" "tests/CMakeFiles/dmtl_tests.dir/parser/parser_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/parser/parser_test.cc.o.d"
  "/root/repo/tests/reference/perp_engine_test.cc" "tests/CMakeFiles/dmtl_tests.dir/reference/perp_engine_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/reference/perp_engine_test.cc.o.d"
  "/root/repo/tests/storage/database_test.cc" "tests/CMakeFiles/dmtl_tests.dir/storage/database_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/storage/database_test.cc.o.d"
  "/root/repo/tests/storage/serialize_test.cc" "tests/CMakeFiles/dmtl_tests.dir/storage/serialize_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/storage/serialize_test.cc.o.d"
  "/root/repo/tests/synth/temporal_bench_test.cc" "tests/CMakeFiles/dmtl_tests.dir/synth/temporal_bench_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/synth/temporal_bench_test.cc.o.d"
  "/root/repo/tests/temporal/interval_bounds_property_test.cc" "tests/CMakeFiles/dmtl_tests.dir/temporal/interval_bounds_property_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/temporal/interval_bounds_property_test.cc.o.d"
  "/root/repo/tests/temporal/interval_set_test.cc" "tests/CMakeFiles/dmtl_tests.dir/temporal/interval_set_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/temporal/interval_set_test.cc.o.d"
  "/root/repo/tests/temporal/interval_test.cc" "tests/CMakeFiles/dmtl_tests.dir/temporal/interval_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/temporal/interval_test.cc.o.d"
  "/root/repo/tests/temporal/mtl_operator_test.cc" "tests/CMakeFiles/dmtl_tests.dir/temporal/mtl_operator_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/temporal/mtl_operator_test.cc.o.d"
  "/root/repo/tests/temporal/rational_test.cc" "tests/CMakeFiles/dmtl_tests.dir/temporal/rational_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/temporal/rational_test.cc.o.d"
  "/root/repo/tests/tools/cli_test.cc" "tests/CMakeFiles/dmtl_tests.dir/tools/cli_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/tools/cli_test.cc.o.d"
  "/root/repo/tests/validation/compare_test.cc" "tests/CMakeFiles/dmtl_tests.dir/validation/compare_test.cc.o" "gcc" "tests/CMakeFiles/dmtl_tests.dir/validation/compare_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dmtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
