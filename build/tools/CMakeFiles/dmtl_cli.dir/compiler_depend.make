# Empty compiler generated dependencies file for dmtl_cli.
# This may be replaced when dependencies are built.
