file(REMOVE_RECURSE
  "CMakeFiles/dmtl_cli.dir/dmtl_cli.cc.o"
  "CMakeFiles/dmtl_cli.dir/dmtl_cli.cc.o.d"
  "dmtl_cli"
  "dmtl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmtl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
